// Live-introspection HTTP server tests: /metrics and /statusz smoke-tested
// against a real in-process server during a multi-batch online query, plus
// route/error behavior of the embedded server itself. The client is a raw
// loopback socket — the same bytes curl would send.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/random.h"
#include "gola/gola.h"
#include "obs/http_server.h"
#include "obs/query_registry.h"

namespace gola {
namespace obs {
namespace {

/// Minimal HTTP/1.0-style GET over loopback; returns the full response
/// (status line, headers, body) or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

int StatusOf(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

/// Structural JSON sanity without a full parser: non-empty, object-shaped,
/// balanced braces/brackets outside string literals.
bool LooksLikeJson(const std::string& body) {
  int depth = 0;
  bool in_string = false, escaped = false, seen_any = false;
  for (char c : body) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; seen_any = true; break;
      case '}': case ']': --depth; break;
      default: break;
    }
    if (depth < 0) return false;
  }
  return seen_any && depth == 0 && !in_string;
}

Table MakeSessions(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"session_id", TypeId::kInt64},
      {"ad_id", TypeId::kInt64},
      {"buffer_time", TypeId::kFloat64},
      {"play_time", TypeId::kFloat64},
  });
  TableBuilder builder(schema, /*chunk_size=*/256);
  for (int64_t i = 0; i < n; ++i) {
    double buffer = rng.Exponential(30.0);
    double play = std::max(0.0, 600.0 - 4.0 * buffer + rng.Normal(0, 50));
    builder.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(1, 8)),
                       Value::Float(buffer), Value::Float(play)});
  }
  return builder.Finish();
}

constexpr const char* kSbi =
    "SELECT AVG(play_time) FROM sessions "
    "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";

/// The process-wide server, started once on an ephemeral port.
int ServerPort() {
  auto server = EnsureIntrospectionServer(0);
  GOLA_CHECK_OK(server.status());
  return (*server)->port();
}

TEST(HttpServerTest, StatuszAndMetricsDuringLiveQuery) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("sessions", MakeSessions(4000, 7)));
  GolaOptions opts;
  opts.num_batches = 8;
  opts.http_port = 0;  // also exercises the controller's server bootstrap
  auto online = engine.ExecuteOnline(kSbi, opts);
  GOLA_CHECK_OK(online.status());
  int port = ServerPort();

  // Scrape mid-query, from inside the per-batch callback: the registry
  // must show this query live with the batch index it just finished.
  int scraped_at_batch = 0;
  auto last = (*online)->Run([&](const OnlineUpdate& update) {
    if (update.batch_index != 3) return true;
    scraped_at_batch = update.batch_index;

    std::string response = HttpGet(port, "/statusz");
    EXPECT_EQ(StatusOf(response), 200);
    std::string body = BodyOf(response);
    EXPECT_TRUE(LooksLikeJson(body)) << body;
    EXPECT_NE(body.find("\"active_queries\""), std::string::npos);
    EXPECT_NE(body.find("\"batch_index\": 3"), std::string::npos) << body;
    EXPECT_NE(body.find("\"fraction_processed\""), std::string::npos);
    EXPECT_NE(body.find("\"max_rsd\""), std::string::npos);
    EXPECT_NE(body.find("\"uncertain_tuples\""), std::string::npos);
    EXPECT_NE(body.find("\"delta_exec_seconds\""), std::string::npos);
    EXPECT_NE(body.find("\"recomputes\""), std::string::npos);

    response = HttpGet(port, "/metrics");
    EXPECT_EQ(StatusOf(response), 200);
    EXPECT_NE(response.find("text/plain"), std::string::npos);
    EXPECT_NE(BodyOf(response).find("gola_online_batches_total"),
              std::string::npos);
    return true;
  });
  GOLA_CHECK_OK(last.status());
  EXPECT_EQ(scraped_at_batch, 3);
  EXPECT_EQ(last->batch_index, 8);
}

TEST(HttpServerTest, FinishedQueryMovesToRecent) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("sessions", MakeSessions(2000, 11)));
  GolaOptions opts;
  opts.num_batches = 4;
  {
    auto online = engine.ExecuteOnline(kSbi, opts);
    GOLA_CHECK_OK(online.status());
    GOLA_CHECK_OK((*online)->Run().status());
  }  // destructor deregisters
  std::string body = BodyOf(HttpGet(ServerPort(), "/statusz"));
  ASSERT_TRUE(LooksLikeJson(body)) << body;
  EXPECT_NE(body.find("\"recent_queries\""), std::string::npos);
  EXPECT_NE(body.find("\"done\": true"), std::string::npos) << body;
}

TEST(HttpServerTest, TracezAndFlightzRespond) {
  int port = ServerPort();
  std::string response = HttpGet(port, "/tracez");
  EXPECT_EQ(StatusOf(response), 200);
  std::string body = BodyOf(response);
  EXPECT_TRUE(LooksLikeJson(body)) << body;
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);

  response = HttpGet(port, "/flightz");
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_NE(BodyOf(response).find("# gola flight recorder"), std::string::npos);
}

TEST(HttpServerTest, UnknownRouteAndMethodErrors) {
  int port = ServerPort();
  std::string response = HttpGet(port, "/no-such-route");
  EXPECT_EQ(StatusOf(response), 404);
  EXPECT_NE(BodyOf(response).find("/metrics"), std::string::npos);

  // Query strings are ignored for routing.
  EXPECT_EQ(StatusOf(HttpGet(port, "/metrics?refresh=1")), 200);
}

TEST(HttpServerTest, StandaloneServerLifecycle) {
  HttpServer server;
  server.Route("/ping", [] {
    HttpServer::Response r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);
  EXPECT_EQ(BodyOf(HttpGet(server.port(), "/ping")), "pong\n");
  int port = server.port();
  server.Stop();
  EXPECT_FALSE(server.running());
  // The port no longer answers.
  EXPECT_EQ(HttpGet(port, "/ping"), "");
  server.Stop();  // idempotent
}

TEST(HttpServerTest, DrainingServerAnswers503) {
  HttpServer server;
  server.Route("/ping", [] {
    HttpServer::Response r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(StatusOf(HttpGet(server.port(), "/ping")), 200);

  // While draining, connections are still accepted but answered with a
  // clean 503 instead of a hung socket or a reset — what a scraper retries.
  server.BeginDrain();
  std::string response = HttpGet(server.port(), "/ping");
  EXPECT_EQ(StatusOf(response), 503);
  EXPECT_NE(response.find("Service Unavailable"), std::string::npos);
  EXPECT_NE(BodyOf(response).find("retry"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, RestartOnSamePortClearsDrainState) {
  HttpServer server;
  server.Route("/ping", [] {
    HttpServer::Response r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.Start(0).ok());
  int port = server.port();
  server.Stop();  // Stop() drains first, then joins

  // SO_REUSEADDR + cleared drain flag: the same port serves 200s again.
  ASSERT_TRUE(server.Start(port).ok());
  EXPECT_EQ(server.port(), port);
  EXPECT_EQ(StatusOf(HttpGet(port, "/ping")), 200);
  server.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace gola

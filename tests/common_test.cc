// string utilities and the thread pool (incl. partial-aggregate-style
// parallel reductions and reentrancy).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace gola {
namespace {

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("abc1"), "ABC1");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Format("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(ThreadPoolTest, ParallelForRunsEveryIteration) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelReductionMatchesSequential) {
  ThreadPool pool(4);
  const size_t kParts = 64;
  std::vector<double> partials(kParts, 0.0);
  pool.ParallelFor(kParts, [&](size_t p) {
    double sum = 0;
    for (size_t i = p * 1000; i < (p + 1) * 1000; ++i) sum += static_cast<double>(i);
    partials[p] = sum;
  });
  double total = 0;
  for (double v : partials) total += v;
  double n = kParts * 1000;
  EXPECT_DOUBLE_EQ(total, n * (n - 1) / 2);
}

TEST(ThreadPoolTest, ReentrantCallsRunInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](size_t) {
    // Nested use from a worker must not deadlock.
    pool.ParallelFor(4, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed ParallelFor.
  std::atomic<int> count{0};
  pool.ParallelFor(32, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, WorkerExceptionAbandonsRemainingIterations) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(100000,
                                [&](size_t) {
                                  ran.fetch_add(1);
                                  throw std::runtime_error("first");
                                }),
               std::runtime_error);
  // Cancellation is best-effort but must kick in well before the end.
  EXPECT_LT(ran.load(), 100000);
}

TEST(ThreadPoolTest, InlinePathPropagatesException) {
  ThreadPool pool(2);
  // n == 1 runs inline on the caller; the exception must still surface.
  EXPECT_THROW(
      pool.ParallelFor(1, [](size_t) { throw std::runtime_error("inline"); }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ZeroAndOneIterations) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int runs = 0;
  pool.ParallelFor(1, [&](size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace gola

// Randomized query fuzzing: generate structurally random (but valid)
// nested-aggregate queries over random data and assert the per-batch
// online-equals-batch invariant on every one. Complements the hand-picked
// templates in property_test.cc with combinatorial coverage of predicate
// shapes, comparison operators, aggregate kinds and grouping.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "gola/gola.h"

namespace gola {
namespace {

Table MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g1", TypeId::kInt64},
      {"g2", TypeId::kInt64},
      {"a", TypeId::kFloat64},
      {"b", TypeId::kFloat64},
      {"c", TypeId::kFloat64},
  });
  TableBuilder builder(schema, 200);
  for (int64_t i = 0; i < n; ++i) {
    builder.AppendRow({Value::Int(rng.UniformInt(1, 4)), Value::Int(rng.UniformInt(1, 7)),
                       Value::Float(rng.LogNormal(1.5, 0.6)),
                       Value::Float(rng.Normal(40, 12)),
                       Value::Float(rng.UniformDouble(0, 100))});
  }
  return builder.Finish();
}

/// Builds one random query from composable pieces.
std::string RandomQuery(Rng* rng) {
  const char* measures[] = {"a", "b", "c"};
  const char* aggs[] = {"AVG", "SUM", "MIN", "MAX", "COUNT", "STDDEV"};
  const char* cmps[] = {">", "<", ">=", "<="};
  auto measure = [&] { return measures[rng->NextBelow(3)]; };
  auto agg = [&] { return aggs[rng->NextBelow(6)]; };

  std::string select;
  std::string group;
  if (rng->Bernoulli(0.5)) {
    const char* key = rng->Bernoulli(0.5) ? "g1" : "g2";
    select = Format("SELECT %s, %s(%s) AS m", key, agg(), measure());
    group = Format(" GROUP BY %s ORDER BY %s", key, key);
  } else {
    select = Format("SELECT %s(%s) AS m, COUNT(*) AS n", agg(), measure());
  }

  // 1-2 uncertain conjuncts; each compares a measure with a (possibly
  // correlated, possibly affine-wrapped) nested aggregate.
  int num_preds = 1 + static_cast<int>(rng->NextBelow(2));
  std::string where;
  for (int p = 0; p < num_preds; ++p) {
    const char* lhs = measure();
    const char* inner_measure = measure();
    const char* inner_agg = rng->Bernoulli(0.7) ? "AVG" : "SUM";
    std::string sub;
    if (rng->Bernoulli(0.4)) {
      const char* key = rng->Bernoulli(0.5) ? "g1" : "g2";
      sub = Format("(SELECT %s(%s) FROM d u WHERE u.%s = d.%s)", inner_agg,
                   inner_measure, key, key);
    } else {
      sub = Format("(SELECT %s(%s) FROM d)", inner_agg, inner_measure);
    }
    if (rng->Bernoulli(0.3)) {
      sub = Format("%.2f * %s", rng->UniformDouble(0.5, 1.5), sub.c_str());
    }
    where += Format("%s %s %s %s", p == 0 ? " WHERE" : " AND", lhs,
                    cmps[rng->NextBelow(4)], sub.c_str());
  }
  return select + " FROM d d" + where + group;
}

TEST(FuzzQueryTest, OnlineMatchesBatchOnRandomQueries) {
  const int kQueries = 25;
  Rng rng(20260705);
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(1200, 55)));
  BatchExecutor batch(&engine.catalog());

  int executed = 0;
  for (int q = 0; q < kQueries; ++q) {
    std::string sql = RandomQuery(&rng);
    SCOPED_TRACE(sql);
    auto compiled = engine.Compile(sql);
    ASSERT_TRUE(compiled.ok()) << sql << ": " << compiled.status().ToString();

    GolaOptions opts;
    opts.num_batches = 5;
    opts.bootstrap_replicates = 20;
    opts.seed = 1000 + static_cast<uint64_t>(q);
    auto online = engine.ExecuteOnline(sql, opts);
    ASSERT_TRUE(online.ok()) << sql << ": " << online.status().ToString();

    TablePtr table = *engine.GetTable("d");
    MiniBatchOptions part_opts;
    part_opts.num_batches = opts.num_batches;
    part_opts.seed = opts.seed;
    MiniBatchPartitioner partitioner(*table, part_opts);

    while (!(*online)->done()) {
      auto update = (*online)->Step();
      ASSERT_TRUE(update.ok()) << sql << ": " << update.status().ToString();
      BatchExecOptions bopts;
      bopts.scale = update->scale;
      auto expected = batch.ExecuteOnChunks(
          *compiled, "d", partitioner.BatchesUpTo(update->batch_index), bopts);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ASSERT_EQ(update->result.num_rows(), expected->num_rows())
          << sql << " @batch " << update->batch_index;
      for (int64_t r = 0; r < expected->num_rows(); ++r) {
        for (size_t c = 0; c < expected->schema()->num_fields(); ++c) {
          Value got = update->result.At(r, static_cast<int>(c));
          Value want = expected->At(r, static_cast<int>(c));
          if (want.is_null()) {
            ASSERT_TRUE(got.is_null()) << sql;
            continue;
          }
          double dg = got.ToDouble().ValueOr(1e100);
          double dw = want.ToDouble().ValueOr(-1e100);
          ASSERT_NEAR(dg, dw, 1e-8 * (1 + std::fabs(dw)))
              << sql << " @batch " << update->batch_index << " row " << r
              << " col " << c;
        }
      }
    }
    ++executed;
  }
  EXPECT_EQ(executed, kQueries);
}

}  // namespace
}  // namespace gola

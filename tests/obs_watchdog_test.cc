// Convergence watchdog: episode semantics for the three detectors — each
// fires once when its condition first holds, re-arms only after recovery.
#include <gtest/gtest.h>

#include <vector>

#include "obs/watchdog.h"

namespace gola {
namespace obs {
namespace {

WatchdogOptions SmallOptions() {
  WatchdogOptions o;
  o.stall_window = 3;
  o.stall_min_improvement = 0.05;
  o.stall_rsd_floor = 0.01;
  o.ci_regression_factor = 1.5;
  o.uncertain_growth_window = 3;
  return o;
}

// Feed an observation where only the stall signal matters: half-width and
// uncertain count shrink steadily so the other detectors stay quiet.
std::vector<WatchdogAlert> FeedRsd(ConvergenceWatchdog& dog, int64_t batch,
                                   double rsd) {
  return dog.Observe(batch, /*has_rsd=*/true, rsd,
                     /*ci_half_width=*/1.0 / (batch + 1),
                     /*uncertain_tuples=*/1000 - batch);
}

TEST(WatchdogTest, StallFiresOncePerEpisode) {
  ConvergenceWatchdog dog(SmallOptions());
  // Improving: no alert.
  EXPECT_TRUE(FeedRsd(dog, 0, 0.40).empty());
  EXPECT_TRUE(FeedRsd(dog, 1, 0.30).empty());
  EXPECT_TRUE(FeedRsd(dog, 2, 0.20).empty());
  // Flat-line above the floor: window [0.20, 0.20, 0.20] → stall.
  EXPECT_TRUE(FeedRsd(dog, 3, 0.20).empty());  // window still improving
  auto fired = FeedRsd(dog, 4, 0.20);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "stall");
  EXPECT_EQ(fired[0].batch_index, 4);
  // Still stalled: same episode, no repeat alert.
  EXPECT_TRUE(FeedRsd(dog, 5, 0.20).empty());
  EXPECT_TRUE(FeedRsd(dog, 6, 0.20).empty());
  // Recovery re-arms...
  EXPECT_TRUE(FeedRsd(dog, 7, 0.10).empty());
  EXPECT_TRUE(FeedRsd(dog, 8, 0.05).empty());
  // ...so a second flat-line fires again.
  EXPECT_TRUE(FeedRsd(dog, 9, 0.05).empty());
  fired = FeedRsd(dog, 10, 0.05);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "stall");
  EXPECT_EQ(dog.alerts_total(), 2);
}

TEST(WatchdogTest, FlatRsdAtFloorIsConvergedNotStalled) {
  ConvergenceWatchdog dog(SmallOptions());
  for (int64_t b = 0; b < 10; ++b) {
    EXPECT_TRUE(FeedRsd(dog, b, 0.005).empty()) << "batch " << b;
  }
  EXPECT_EQ(dog.alerts_total(), 0);
}

TEST(WatchdogTest, AbsentRsdSkipsStallDetector) {
  ConvergenceWatchdog dog(SmallOptions());
  for (int64_t b = 0; b < 10; ++b) {
    auto fired = dog.Observe(b, /*has_rsd=*/false, 0.0,
                             /*ci_half_width=*/1.0, /*uncertain_tuples=*/100);
    EXPECT_TRUE(fired.empty()) << "batch " << b;
  }
  EXPECT_EQ(dog.alerts_total(), 0);
}

TEST(WatchdogTest, CiRegressionFiresOnBlowupAndRearmsAfterRecovery) {
  ConvergenceWatchdog dog(SmallOptions());
  // has_rsd=false keeps the stall detector out of this test's way.
  auto feed = [&](int64_t b, double half) {
    return dog.Observe(b, /*has_rsd=*/false, 0.0, half, 1000 - b);
  };
  EXPECT_TRUE(feed(0, 1.0).empty());
  EXPECT_TRUE(feed(1, 0.9).empty());   // shrinking: fine
  EXPECT_TRUE(feed(2, 1.2).empty());   // 1.33x: below factor 1.5
  auto fired = feed(3, 2.0);           // 1.67x: blowup
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "ci_regression");
  // Still wide but not growing past factor again: same episode resolved.
  EXPECT_TRUE(feed(4, 2.1).empty());
  // Second blowup after re-arm fires again.
  fired = feed(5, 4.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "ci_regression");
}

TEST(WatchdogTest, UncertainGrowthNeedsConsecutiveIncreases) {
  ConvergenceWatchdog dog(SmallOptions());
  auto feed = [&](int64_t b, int64_t uncertain) {
    return dog.Observe(b, /*has_rsd=*/false, 0.0, 1.0, uncertain);
  };
  EXPECT_TRUE(feed(0, 100).empty());
  EXPECT_TRUE(feed(1, 110).empty());  // streak 1
  EXPECT_TRUE(feed(2, 120).empty());  // streak 2
  auto fired = feed(3, 130);          // streak 3 == window
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "uncertain_growth");
  // Continued growth: same episode.
  EXPECT_TRUE(feed(4, 140).empty());
  // A shrink resets both the streak and the episode.
  EXPECT_TRUE(feed(5, 50).empty());
  EXPECT_TRUE(feed(6, 60).empty());
  EXPECT_TRUE(feed(7, 70).empty());
  fired = feed(8, 80);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, "uncertain_growth");
}

TEST(WatchdogTest, NonMonotoneGrowthDoesNotFire) {
  ConvergenceWatchdog dog(SmallOptions());
  auto feed = [&](int64_t b, int64_t uncertain) {
    return dog.Observe(b, /*has_rsd=*/false, 0.0, 1.0, uncertain);
  };
  // Sawtooth: grows twice, dips, repeats — never 3 consecutive increases.
  const int64_t pattern[] = {100, 110, 120, 90, 100, 110, 80, 90, 100, 70};
  for (int64_t b = 0; b < 10; ++b) {
    EXPECT_TRUE(feed(b, pattern[b]).empty()) << "batch " << b;
  }
  EXPECT_EQ(dog.alerts_total(), 0);
}

TEST(WatchdogTest, DisabledWatchdogNeverFires) {
  WatchdogOptions o = SmallOptions();
  o.enabled = false;
  ConvergenceWatchdog dog(o);
  for (int64_t b = 0; b < 10; ++b) {
    // Pathological on every axis at once.
    EXPECT_TRUE(dog.Observe(b, true, 0.5, 1 << b, 100 * (b + 1)).empty());
  }
  EXPECT_EQ(dog.alerts_total(), 0);
}

TEST(WatchdogTest, AlertLogIsBounded) {
  WatchdogOptions o = SmallOptions();
  o.ci_regression_factor = 1.0;  // clamp floor: fire on any >1.0x growth
  ConvergenceWatchdog dog(o);
  double half = 1.0;
  int64_t total = 0;
  for (int64_t b = 0; b < 400; ++b) {
    // Alternate blowup / recovery so every other observation fires.
    half = (b % 2 == 0) ? half * 3 : half * 0.5;
    total += dog.Observe(b, false, 0, half, 10).size();
  }
  EXPECT_GT(total, 64);
  EXPECT_EQ(dog.alerts_total(), total);
  EXPECT_EQ(dog.alerts().size(), 64u);
  // Oldest dropped, newest retained.
  EXPECT_GT(dog.alerts().front().batch_index, 0);
  EXPECT_GT(dog.alerts().back().batch_index, dog.alerts().front().batch_index);
}

}  // namespace
}  // namespace obs
}  // namespace gola

// Vectorized expression evaluation: arithmetic typing, NULL propagation,
// comparisons, logic, CASE, IS NULL, scalar functions and subquery
// references against a BroadcastEnv.
#include "expr/evaluator.h"

#include <gtest/gtest.h>

namespace gola {
namespace {

ExprPtr BoundCol(const char* name, int index, TypeId type) {
  ExprPtr e = Expr::Col(name);
  e->column_index = index;
  e->type = type;
  return e;
}

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"i", TypeId::kInt64}, {"x", TypeId::kFloat64}, {"s", TypeId::kString}});
    Column xs(TypeId::kFloat64);
    xs.AppendFloat(1.5);
    xs.AppendNull();
    xs.AppendFloat(-2.0);
    chunk_ = Chunk(schema, {Column::MakeInt({1, 2, 3}), std::move(xs),
                            Column::MakeString({"a", "b", "c"})});
  }

  Chunk chunk_;
};

TEST_F(EvaluatorTest, IntegerArithmeticStaysInt) {
  ExprPtr e = Expr::Arith(ArithOp::kAdd, BoundCol("i", 0, TypeId::kInt64),
                          Expr::Lit(Value::Int(10)));
  e->type = TypeId::kInt64;
  auto r = Evaluate(*e, chunk_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), TypeId::kInt64);
  EXPECT_EQ(r->ints()[2], 13);
}

TEST_F(EvaluatorTest, DivisionYieldsFloatAndNullOnZero) {
  ExprPtr e = Expr::Arith(ArithOp::kDiv, Expr::Lit(Value::Float(10.0)),
                          BoundCol("x", 1, TypeId::kFloat64));
  e->type = TypeId::kFloat64;
  auto r = Evaluate(*e, chunk_);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->floats()[0], 10.0 / 1.5);
  EXPECT_TRUE(r->IsNull(1));  // null operand propagates
}

TEST_F(EvaluatorTest, NullComparisonIsFalse) {
  ExprPtr e = Expr::Cmp(CmpOp::kGt, BoundCol("x", 1, TypeId::kFloat64),
                        Expr::Lit(Value::Float(0.0)));
  e->type = TypeId::kBool;
  auto sel = EvaluatePredicate(*e, chunk_);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)[0], 1);
  EXPECT_EQ((*sel)[1], 0);  // NULL > 0 → false
  EXPECT_EQ((*sel)[2], 0);
}

TEST_F(EvaluatorTest, StringComparison) {
  ExprPtr e = Expr::Cmp(CmpOp::kGe, BoundCol("s", 2, TypeId::kString),
                        Expr::Lit(Value::String("b")));
  e->type = TypeId::kBool;
  auto sel = EvaluatePredicate(*e, chunk_);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)[0], 0);
  EXPECT_EQ((*sel)[1], 1);
  EXPECT_EQ((*sel)[2], 1);
}

TEST_F(EvaluatorTest, MixedStringNumericComparisonErrors) {
  ExprPtr e = Expr::Cmp(CmpOp::kEq, BoundCol("s", 2, TypeId::kString),
                        Expr::Lit(Value::Int(1)));
  e->type = TypeId::kBool;
  EXPECT_FALSE(Evaluate(*e, chunk_).ok());
}

TEST_F(EvaluatorTest, LogicalConnectives) {
  ExprPtr gt0 = Expr::Cmp(CmpOp::kGt, BoundCol("i", 0, TypeId::kInt64),
                          Expr::Lit(Value::Int(1)));
  gt0->type = TypeId::kBool;
  ExprPtr lt3 = Expr::Cmp(CmpOp::kLt, BoundCol("i", 0, TypeId::kInt64),
                          Expr::Lit(Value::Int(3)));
  lt3->type = TypeId::kBool;
  ExprPtr both = Expr::And(gt0, lt3);
  both->type = TypeId::kBool;
  auto sel = EvaluatePredicate(*both, chunk_);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)[0], 0);
  EXPECT_EQ((*sel)[1], 1);
  EXPECT_EQ((*sel)[2], 0);

  ExprPtr neither = Expr::Not(both->Clone());
  neither->type = TypeId::kBool;
  auto nsel = EvaluatePredicate(*neither, chunk_);
  ASSERT_TRUE(nsel.ok());
  EXPECT_EQ((*nsel)[0], 1);
}

TEST_F(EvaluatorTest, IsNull) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->literal = Value::Bool(false);  // IS NULL
  e->children.push_back(BoundCol("x", 1, TypeId::kFloat64));
  e->type = TypeId::kBool;
  auto sel = EvaluatePredicate(*e, chunk_);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)[0], 0);
  EXPECT_EQ((*sel)[1], 1);
}

TEST_F(EvaluatorTest, CaseExpression) {
  // CASE WHEN i = 1 THEN 100 ELSE i END
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCase;
  ExprPtr when = Expr::Cmp(CmpOp::kEq, BoundCol("i", 0, TypeId::kInt64),
                           Expr::Lit(Value::Int(1)));
  when->type = TypeId::kBool;
  e->children = {when, Expr::Lit(Value::Int(100)), BoundCol("i", 0, TypeId::kInt64)};
  e->type = TypeId::kInt64;
  auto r = Evaluate(*e, chunk_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetValue(0), Value::Int(100));
  EXPECT_EQ(r->GetValue(2), Value::Int(3));
}

TEST_F(EvaluatorTest, ScalarFunctions) {
  ExprPtr e = Expr::Func("abs", {BoundCol("x", 1, TypeId::kFloat64)});
  e->type = TypeId::kFloat64;
  auto r = Evaluate(*e, chunk_);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->NumericAt(2), 2.0);

  ExprPtr b = Expr::Func("bucket", {BoundCol("x", 1, TypeId::kFloat64),
                                    Expr::Lit(Value::Float(1.0))});
  b->type = TypeId::kFloat64;
  auto rb = Evaluate(*b, chunk_);
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(rb->NumericAt(0), 1.0);
  EXPECT_DOUBLE_EQ(rb->NumericAt(2), -2.0);
}

TEST_F(EvaluatorTest, GlobalScalarSubqueryRef) {
  BroadcastEnv env;
  env.SetScalar(3, Value::Float(0.5));
  ExprPtr ref = Expr::SubqueryScalar(3);
  ref->type = TypeId::kFloat64;
  ExprPtr e = Expr::Cmp(CmpOp::kGt, BoundCol("x", 1, TypeId::kFloat64), ref);
  e->type = TypeId::kBool;
  auto sel = EvaluatePredicate(*e, chunk_, &env);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)[0], 1);
  EXPECT_EQ((*sel)[2], 0);
}

TEST_F(EvaluatorTest, KeyedSubqueryRefLooksUpPerRow) {
  BroadcastEnv env;
  std::unordered_map<Value, Value, ValueHash> keyed;
  keyed[Value::Int(1)] = Value::Float(10);
  keyed[Value::Int(3)] = Value::Float(-30);
  env.SetKeyed(5, std::move(keyed));
  ExprPtr ref = Expr::SubqueryScalar(5, BoundCol("i", 0, TypeId::kInt64));
  ref->type = TypeId::kFloat64;
  auto r = Evaluate(*ref, chunk_, &env);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->NumericAt(0), 10.0);
  EXPECT_TRUE(r->IsNull(1));  // key 2 missing
  EXPECT_DOUBLE_EQ(r->NumericAt(2), -30.0);
}

TEST_F(EvaluatorTest, MembershipSubqueryRef) {
  BroadcastEnv env;
  std::unordered_set<Value, ValueHash> members;
  members.insert(Value::Int(2));
  env.SetMembership(8, std::move(members));
  ExprPtr in = Expr::SubqueryIn(8, BoundCol("i", 0, TypeId::kInt64), false);
  in->type = TypeId::kBool;
  auto sel = EvaluatePredicate(*in, chunk_, &env);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)[0], 0);
  EXPECT_EQ((*sel)[1], 1);

  ExprPtr not_in = Expr::SubqueryIn(8, BoundCol("i", 0, TypeId::kInt64), true);
  not_in->type = TypeId::kBool;
  auto nsel = EvaluatePredicate(*not_in, chunk_, &env);
  ASSERT_TRUE(nsel.ok());
  EXPECT_EQ((*nsel)[0], 1);
  EXPECT_EQ((*nsel)[1], 0);
}

TEST_F(EvaluatorTest, SubqueryRefWithoutEnvErrors) {
  ExprPtr ref = Expr::SubqueryScalar(1);
  ref->type = TypeId::kFloat64;
  EXPECT_FALSE(Evaluate(*ref, chunk_).ok());
}

TEST_F(EvaluatorTest, EvaluateScalarConstantFolding) {
  ExprPtr e = Expr::Arith(ArithOp::kMul, Expr::Lit(Value::Float(3.0)),
                          Expr::Lit(Value::Float(4.0)));
  e->type = TypeId::kFloat64;
  auto v = EvaluateScalar(*e);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v->ToDouble(), 12.0);
}

}  // namespace
}  // namespace gola

// Observability must not perturb results: an online drain with metrics and
// tracing enabled must be BIT-IDENTICAL to one with both disabled (the
// instrumentation only reads clocks and bumps counters — never touches the
// morsel plan or any merge order). Also sanity-checks the per-update
// QueryStats attached to OnlineUpdate.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "gola/gola.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/conviva_gen.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

namespace gola {
namespace {

class ObsEquivalenceTest : public ::testing::Test {
 protected:
  static Engine* engine() {
    static Engine* instance = [] {
      auto* e = new Engine();
      ConvivaGenOptions conviva;
      conviva.num_rows = 6000;
      conviva.num_ads = 12;
      conviva.num_contents = 200;
      GOLA_CHECK_OK(e->RegisterTable("conviva", GenerateConviva(conviva)));
      TpchGenOptions tpch;
      tpch.num_rows = 6000;
      tpch.num_parts = 60;
      tpch.num_suppliers = 15;
      GOLA_CHECK_OK(e->RegisterTable("tpch", GenerateTpch(tpch)));
      return e;
    }();
    return instance;
  }

  static Table Drain(const std::string& sql, bool instrumented,
                     ThreadPool* pool) {
    obs::SetMetricsEnabled(instrumented);
    if (instrumented) {
      obs::Tracer::Global().Enable();
    } else {
      obs::Tracer::Global().Disable();
    }
    GolaOptions opts;
    opts.num_batches = 8;
    opts.bootstrap_replicates = 40;
    opts.seed = 99;
    opts.pool = pool;
    auto online = engine()->ExecuteOnline(sql, opts);
    GOLA_CHECK_OK(online.status());
    auto last = (*online)->Run();
    GOLA_CHECK_OK(last.status());
    return last->result;
  }

  static void ExpectBitIdentical(const Table& a, const Table& b,
                                 const std::string& name) {
    ASSERT_EQ(a.num_rows(), b.num_rows()) << name;
    ASSERT_EQ(a.schema()->num_fields(), b.schema()->num_fields()) << name;
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      for (size_t c = 0; c < a.schema()->num_fields(); ++c) {
        Value va = a.At(r, static_cast<int>(c));
        Value vb = b.At(r, static_cast<int>(c));
        if (va.is_null() || vb.is_null()) {
          EXPECT_TRUE(va.is_null() && vb.is_null()) << name;
          continue;
        }
        if (va.type() == TypeId::kString) {
          EXPECT_TRUE(va == vb) << name;
          continue;
        }
        double da = va.ToDouble().ValueOr(1e100);
        double db = vb.ToDouble().ValueOr(-1e100);
        if (std::isnan(da) && std::isnan(db)) continue;
        // Bitwise, not approximate: instrumentation must not change a
        // single FP accumulation.
        EXPECT_EQ(da, db) << name << " row " << r << " col " << c;
      }
    }
  }

  void TearDown() override {
    obs::SetMetricsEnabled(true);
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
  }
};

TEST_F(ObsEquivalenceTest, MetricsOnOffBitIdenticalSerialAndParallel) {
  for (const NamedQuery& q : AllQueries()) {
    Table off_serial = Drain(q.sql, /*instrumented=*/false, nullptr);
    Table on_serial = Drain(q.sql, /*instrumented=*/true, nullptr);
    ExpectBitIdentical(off_serial, on_serial, std::string(q.name) + "/serial");

    ThreadPool pool(4);
    Table off_parallel = Drain(q.sql, /*instrumented=*/false, &pool);
    Table on_parallel = Drain(q.sql, /*instrumented=*/true, &pool);
    ExpectBitIdentical(off_parallel, on_parallel,
                       std::string(q.name) + "/parallel");
    // And instrumented parallel == instrumented serial (the pre-existing
    // pool-size contract survives instrumentation).
    ExpectBitIdentical(on_serial, on_parallel, std::string(q.name) + "/pool");
  }
}

TEST_F(ObsEquivalenceTest, QueryStatsAccountForTheBatch) {
  obs::SetMetricsEnabled(true);
  GolaOptions opts;
  opts.num_batches = 6;
  opts.bootstrap_replicates = 30;
  opts.seed = 7;
  auto online = engine()->ExecuteOnline(SbiQuery(), opts);
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  int64_t total_rows_in = 0;
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    const obs::QueryStats& s = update->stats;
    EXPECT_GT(s.morsels, 0);
    EXPECT_GT(s.rows_in, 0);
    EXPECT_GE(s.delta_exec_seconds, 0.0);
    EXPECT_GE(s.envelope_check_seconds, 0.0);
    EXPECT_GE(s.emit_seconds, 0.0);
    EXPECT_GE(s.materialize_seconds, 0.0);
    // The phase breakdown cannot exceed the whole step.
    EXPECT_LE(s.envelope_check_seconds + s.delta_exec_seconds + s.emit_seconds +
                  s.rebuild_seconds + s.materialize_seconds,
              update->batch_seconds + 1e-6);
    EXPECT_EQ(update->materialize_seconds, s.materialize_seconds);
    if (s.failure_cause == nullptr) {
      EXPECT_EQ(s.rebuild_seconds, 0.0);
    } else {
      EXPECT_GT(s.rebuild_seconds, 0.0);
    }
    total_rows_in += s.rows_in;
  }
  // Every streamed row enters the pipeline at least once (rebuilds rescan).
  EXPECT_GE(total_rows_in, 6000);
}

TEST_F(ObsEquivalenceTest, RegistryCoversEngineLayersAfterADrain) {
  obs::SetMetricsEnabled(true);
  ThreadPool pool(2);
  GolaOptions opts;
  opts.num_batches = 5;
  opts.bootstrap_replicates = 20;
  opts.pool = &pool;
  auto online = engine()->ExecuteOnline(SbiQuery(), opts);
  ASSERT_TRUE(online.ok());
  ASSERT_TRUE((*online)->Run().ok());

  std::string text = obs::MetricsRegistry::Global().RenderText();
  // The acceptance criterion: ThreadPool, pipeline-stage and uncertain-set
  // metrics all visible in one exposition.
  EXPECT_NE(text.find("gola_threadpool_tasks_total"), std::string::npos);
  EXPECT_NE(text.find("gola_pipeline_stage_us"), std::string::npos);
  EXPECT_NE(text.find("gola_pipeline_morsel_us"), std::string::npos);
  EXPECT_NE(text.find("gola_online_uncertain_tuples"), std::string::npos);
  EXPECT_NE(text.find("gola_online_batches_total"), std::string::npos);
}

}  // namespace
}  // namespace gola

// Resilient online execution under injected faults: morsel/pipeline retry
// reproduces bit-identical answers, a forced envelope-check failure recovers
// through the query-wide rebuild path, retry exhaustion surfaces as a real
// error, and deadline pressure degrades in the documented order without ever
// turning a well-formed query into an error.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "gola/gola.h"

namespace gola {
namespace {

Table MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g1", TypeId::kInt64},
      {"a", TypeId::kFloat64},
      {"b", TypeId::kFloat64},
  });
  TableBuilder builder(schema, 200);
  for (int64_t i = 0; i < n; ++i) {
    builder.AppendRow({Value::Int(rng.UniformInt(1, 5)),
                       Value::Float(rng.LogNormal(1.5, 0.6)),
                       Value::Float(rng.Normal(40, 12))});
  }
  return builder.Finish();
}

constexpr const char* kQuery =
    "SELECT g1, AVG(a) AS m, COUNT(*) AS n FROM d d "
    "WHERE b > 0.9 * (SELECT AVG(b) FROM d) GROUP BY g1 ORDER BY g1";

void ExpectTablesIdentical(const Table& got, const Table& want,
                           const std::string& what) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << what;
  ASSERT_TRUE(got.schema()->Equals(*want.schema())) << what;
  for (int64_t r = 0; r < want.num_rows(); ++r) {
    for (size_t c = 0; c < want.schema()->num_fields(); ++c) {
      ASSERT_TRUE(got.At(r, static_cast<int>(c)) ==
                  want.At(r, static_cast<int>(c)))
          << what << " differs at row " << r << " col "
          << want.schema()->field(c).name;
    }
  }
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::DisarmAll();
    GOLA_CHECK_OK(engine_.RegisterTable("d", MakeData(1500, 77)));
  }
  void TearDown() override { fail::DisarmAll(); }

  /// Runs kQuery to completion, returning every per-batch update.
  std::vector<OnlineUpdate> RunAll(const GolaOptions& opts) {
    std::vector<OnlineUpdate> updates;
    auto online = engine_.ExecuteOnline(kQuery, opts);
    GOLA_CHECK_OK(online.status());
    while (!(*online)->done()) {
      auto update = (*online)->Step();
      GOLA_CHECK_OK(update.status());
      updates.push_back(std::move(*update));
    }
    return updates;
  }

  GolaOptions BaseOptions() {
    GolaOptions opts;
    opts.num_batches = 6;
    opts.bootstrap_replicates = 24;
    opts.seed = 2026;
    opts.max_morsel_retries = 4;
    opts.retry_backoff_ms = 0;
    return opts;
  }

  Engine engine_;
};

TEST_F(ResilienceTest, MorselRetryReproducesBitIdenticalUpdates) {
  GolaOptions opts = BaseOptions();
  std::vector<OnlineUpdate> clean = RunAll(opts);

  // The run only hits the site a dozen or so times (one morsel per block per
  // batch at this data size), so the per-hit probability is high; the seeded
  // PRNG keeps the fault schedule — and therefore the test — deterministic.
  fail::SetSeed(31337);
  GOLA_CHECK_OK(fail::Arm("exec.morsel", "prob(0.3)"));
  std::vector<OnlineUpdate> faulty = RunAll(opts);
  int64_t fires = fail::Fires("exec.morsel");
  fail::DisarmAll();

  EXPECT_GT(fires, 0) << "p=0.3 over every morsel should have fired";
  ASSERT_EQ(faulty.size(), clean.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    ExpectTablesIdentical(faulty[i].result, clean[i].result,
                          Format("update %zu", i));
    EXPECT_EQ(faulty[i].uncertain_tuples, clean[i].uncertain_tuples);
    EXPECT_EQ(faulty[i].max_rsd, clean[i].max_rsd);
  }
}

TEST_F(ResilienceTest, ForcedEnvelopeFailureRecoversViaRebuild) {
  GolaOptions opts = BaseOptions();
  std::vector<OnlineUpdate> clean = RunAll(opts);
  ASSERT_EQ(clean.back().recomputes_so_far, 0)
      << "baseline run must be recompute-free for this test to mean anything";

  // Force one variation-range violation mid-query: the controller must take
  // the full §3.2 recompute path and still land on the same final answer.
  GOLA_CHECK_OK(fail::Arm("gola.check_envelopes", "nth(2)"));
  std::vector<OnlineUpdate> recovered = RunAll(opts);
  fail::DisarmAll();

  ASSERT_EQ(recovered.size(), clean.size());
  EXPECT_GT(recovered.back().recomputes_so_far, 0)
      << "the injected range failure must have triggered a rebuild";
  ExpectTablesIdentical(recovered.back().result, clean.back().result,
                        "final update after forced rebuild");
}

TEST_F(ResilienceTest, RebuildFaultIsRetriedToTheSameAnswer) {
  GolaOptions opts = BaseOptions();
  std::vector<OnlineUpdate> clean = RunAll(opts);

  // First envelope check forces a rebuild; the rebuild itself then fails
  // once and must be retried (Rebuild resets before running, so a rerun is
  // safe by construction).
  GOLA_CHECK_OK(fail::Arm("gola.check_envelopes", "once"));
  GOLA_CHECK_OK(fail::Arm("gola.rebuild", "once"));
  std::vector<OnlineUpdate> recovered = RunAll(opts);
  int64_t rebuild_fires = fail::Fires("gola.rebuild");
  fail::DisarmAll();

  EXPECT_EQ(rebuild_fires, 1);
  ExpectTablesIdentical(recovered.back().result, clean.back().result,
                        "final update after faulted rebuild");
}

TEST_F(ResilienceTest, ThreadPoolTaskFaultsAreRetriedBitIdentically) {
  ThreadPool pool(4);
  GolaOptions opts = BaseOptions();
  opts.pool = &pool;
  std::vector<OnlineUpdate> clean = RunAll(opts);

  fail::SetSeed(99);
  GOLA_CHECK_OK(fail::Arm("threadpool.task", "prob(0.02)"));
  std::vector<OnlineUpdate> faulty = RunAll(opts);
  int64_t fires = fail::Fires("threadpool.task");
  fail::DisarmAll();

  EXPECT_GT(fires, 0);
  ASSERT_EQ(faulty.size(), clean.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    ExpectTablesIdentical(faulty[i].result, clean[i].result,
                          Format("pooled update %zu", i));
  }
}

TEST_F(ResilienceTest, BootstrapReplicateFaultsAreRetriedBitIdentically) {
  GolaOptions opts = BaseOptions();
  std::vector<OnlineUpdate> clean = RunAll(opts);

  GOLA_CHECK_OK(fail::Arm("bootstrap.replicate", "nth(7)"));
  std::vector<OnlineUpdate> faulty = RunAll(opts);
  int64_t fires = fail::Fires("bootstrap.replicate");
  fail::DisarmAll();

  EXPECT_EQ(fires, 1);
  for (size_t i = 0; i < clean.size(); ++i) {
    ExpectTablesIdentical(faulty[i].result, clean[i].result,
                          Format("update %zu", i));
  }
}

TEST_F(ResilienceTest, RetryExhaustionSurfacesTheInjectedError) {
  GolaOptions opts = BaseOptions();
  opts.max_morsel_retries = 2;
  GOLA_CHECK_OK(fail::Arm("exec.morsel", "always"));
  auto online = engine_.ExecuteOnline(kQuery, opts);
  GOLA_CHECK_OK(online.status());
  auto update = (*online)->Step();
  fail::DisarmAll();

  ASSERT_FALSE(update.ok()) << "a permanently failing site must not loop forever";
  EXPECT_EQ(update.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(update.status().message().find("failpoint"), std::string::npos);
}

TEST_F(ResilienceTest, ZeroRetriesFailsOnFirstFault) {
  GolaOptions opts = BaseOptions();
  opts.max_morsel_retries = 0;
  GOLA_CHECK_OK(fail::Arm("exec.morsel", "once"));
  auto online = engine_.ExecuteOnline(kQuery, opts);
  GOLA_CHECK_OK(online.status());
  auto update = (*online)->Step();
  fail::DisarmAll();
  ASSERT_FALSE(update.ok());
}

// --- deadline_ms: graceful degradation, never an error -------------------

TEST_F(ResilienceTest, DeadlineLadderDegradesInDocumentedOrder) {
  GolaOptions opts = BaseOptions();
  opts.num_batches = 10;
  opts.deadline_ms = 2000;

  auto online = engine_.ExecuteOnline(kQuery, opts);
  GOLA_CHECK_OK(online.status());

  // Sleep between Steps to walk the wall clock through the 50% / 75% / 100%
  // rungs. Sleeps are generous relative to batch cost, so the *order* is
  // deterministic even on a loaded CI machine; the exact batch at which each
  // rung engages is not asserted.
  const int sleeps_ms[] = {0, 1100, 500, 500, 0, 0, 0, 0, 0, 0};
  std::vector<OnlineUpdate> updates;
  int step = 0;
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    GOLA_CHECK_OK(update.status());  // a deadline overrun is never an error
    updates.push_back(std::move(*update));
    if (step < 10 && sleeps_ms[step] > 0 && !(*online)->done()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleeps_ms[step]));
    }
    ++step;
  }

  // The ladder is monotone and ends at stop-early well before the data runs
  // out (3 seconds of sleep against a 2-second deadline).
  for (size_t i = 1; i < updates.size(); ++i) {
    EXPECT_GE(static_cast<int>(updates[i].degradation),
              static_cast<int>(updates[i - 1].degradation))
        << "degradation went backwards at update " << i;
  }
  EXPECT_EQ(updates.back().degradation, Degradation::kStoppedEarly);
  EXPECT_TRUE((*online)->stopped_early());
  EXPECT_LT(static_cast<int>(updates.size()), opts.num_batches);

  // Intermediate updates under skip-materialize pressure carry no result
  // copy; the final (stop-early) update always materializes the answer.
  bool saw_skipped = false;
  for (size_t i = 0; i + 1 < updates.size(); ++i) {
    if (updates[i].degradation >= Degradation::kSkipMaterialize) {
      saw_skipped = true;
      EXPECT_EQ(updates[i].result.num_rows(), 0) << "update " << i;
    }
  }
  EXPECT_TRUE(saw_skipped);
  EXPECT_GT(updates.back().result.num_rows(), 0)
      << "stop-early must still return the best available estimate";
  // The answer carries its CI columns (best estimate *with* error bars).
  EXPECT_TRUE(updates.back().result.schema()->FieldIndex("m_lo").ok());
  EXPECT_TRUE(updates.back().result.schema()->FieldIndex("m_hi").ok());
}

TEST_F(ResilienceTest, TinyDeadlineStopsAfterOneBatchWithAnAnswer) {
  GolaOptions opts = BaseOptions();
  opts.num_batches = 12;
  opts.deadline_ms = 0.001;  // already blown when the first batch lands

  auto online = engine_.ExecuteOnline(kQuery, opts);
  GOLA_CHECK_OK(online.status());
  auto update = (*online)->Step();
  GOLA_CHECK_OK(update.status());

  EXPECT_EQ(update->degradation, Degradation::kStoppedEarly);
  EXPECT_TRUE((*online)->done());
  EXPECT_EQ((*online)->batches_processed(), 1)
      << "the in-flight batch always completes before the stop";
  EXPECT_GT(update->result.num_rows(), 0);
}

TEST_F(ResilienceTest, NoDeadlineNeverDegrades) {
  GolaOptions opts = BaseOptions();
  std::vector<OnlineUpdate> updates = RunAll(opts);
  for (const auto& u : updates) {
    EXPECT_EQ(u.degradation, Degradation::kNone);
  }
}

TEST_F(ResilienceTest, InvalidResilienceOptionsAreRejected) {
  GolaOptions opts = BaseOptions();
  opts.max_morsel_retries = -1;
  EXPECT_EQ(engine_.ExecuteOnline(kQuery, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = BaseOptions();
  opts.deadline_ms = -5;
  EXPECT_EQ(engine_.ExecuteOnline(kQuery, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = BaseOptions();
  opts.active_replicates = opts.bootstrap_replicates + 1;
  EXPECT_EQ(engine_.ExecuteOnline(kQuery, opts).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gola

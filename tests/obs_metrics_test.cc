// Metrics-registry unit tests: histogram percentiles against a
// sorted-vector oracle, sharded-counter snapshots under concurrent
// increments (the TSan CI job runs this), Prometheus text exposition, and
// GOLA_LOG_LEVEL parsing / concurrent log-line atomicity.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace gola {
namespace obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t) {
    for (int i = 0; i < kAddsPerThread; ++i) c.Add(1);
  });
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kAddsPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 40);
}

TEST(HistogramTest, BucketIndexMonotoneAndBoundsConsistent) {
  uint64_t prev_hi = 0;
  for (size_t b = 0; b < 64; ++b) {
    uint64_t lo, hi;
    Histogram::BucketBounds(b, &lo, &hi);
    ASSERT_LE(lo, hi) << "bucket " << b;
    if (b > 0) {
      ASSERT_EQ(lo, prev_hi + 1) << "bucket " << b;
    }
    prev_hi = hi;
    ASSERT_EQ(Histogram::BucketIndex(lo), b);
    ASSERT_EQ(Histogram::BucketIndex(hi), b);
  }
}

TEST(HistogramTest, PercentileMatchesSortedVectorOracle) {
  // Log-linear buckets with 4 sub-buckets per octave bound the bucket width
  // at 25% of its lower edge, so any interpolated percentile is within
  // ~12.5% of the exact order statistic. Check well inside that bound.
  Rng rng(17);
  Histogram h;
  std::vector<int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Exponential(5000.0));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    double exact = static_cast<double>(
        values[static_cast<size_t>(q * (values.size() - 1))]);
    double est = h.Percentile(q);
    EXPECT_NEAR(est, exact, 0.25 * exact + 4.0) << "q=" << q;
  }
  EXPECT_EQ(h.Count(), static_cast<int64_t>(values.size()));
  int64_t sum = 0;
  for (int64_t v : values) sum += v;
  EXPECT_EQ(h.Sum(), sum);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v : {0, 0, 1, 1, 2, 3}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 3.0);
  EXPECT_EQ(h.Count(), 6);
  EXPECT_EQ(h.Sum(), 7);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(RegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total");
  Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("y_total"), a);
  Gauge* g = reg.GetGauge("g");
  EXPECT_EQ(reg.GetGauge("g"), g);
  Histogram* h = reg.GetHistogram("h_us");
  EXPECT_EQ(reg.GetHistogram("h_us"), h);
}

TEST(RegistryTest, SnapshotUnderConcurrentIncrements) {
  // Snapshot races with recorders by design; TSan (the CI thread-sanitizer
  // job) must see only relaxed atomics, and every observed value must be a
  // valid intermediate sum.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("race_total");
  Histogram* h = reg.GetHistogram("race_us");
  constexpr int kWorkers = 4;
  constexpr int64_t kPerWorker = 50000;
  std::atomic<int> workers_done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (int64_t i = 0; i < kPerWorker; ++i) {
        c->Add(1);
        h->Record(i & 1023);
      }
      workers_done.fetch_add(1);
    });
  }
  int64_t last = 0;
  while (workers_done.load() < kWorkers) {
    MetricsSnapshot snap = reg.Snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    int64_t v = snap.counters[0].value;
    ASSERT_GE(v, last);  // monotone counter: snapshots never go backwards
    ASSERT_LE(v, kWorkers * kPerWorker);
    last = v;
  }
  for (auto& t : workers) t.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters[0].value, kWorkers * kPerWorker);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kWorkers * kPerWorker);
}

TEST(RegistryTest, RenderTextExposesAllKinds) {
  MetricsRegistry reg;
  reg.GetCounter("gola_demo_rows_total")->Add(7);
  reg.GetGauge("gola_demo_depth")->Set(3);
  Histogram* h = reg.GetHistogram("gola_demo_latency_us{stage=\"filter\"}");
  for (int i = 1; i <= 100; ++i) h->Record(i);
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("# TYPE gola_demo_rows_total counter"), std::string::npos);
  EXPECT_NE(text.find("gola_demo_rows_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gola_demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("gola_demo_depth 3"), std::string::npos);
  EXPECT_NE(text.find("gola_demo_latency_us_count{stage=\"filter\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

TEST(LabeledMetricsTest, RenderAndCanonicalName) {
  MetricLabels none;
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(LabeledName("gola_x_total", none), "gola_x_total");

  MetricLabels labels;
  labels.session_id = "7";
  labels.table = "conviva";
  EXPECT_FALSE(labels.empty());
  EXPECT_EQ(labels.Render(), "session_id=\"7\",table=\"conviva\"");
  EXPECT_EQ(LabeledName("gola_x_total", labels),
            "gola_x_total{session_id=\"7\",table=\"conviva\"}");

  // Fixed field order: the same label set always canonicalizes to the same
  // series name, whatever order the fields were assigned in.
  MetricLabels phase_only;
  phase_only.phase = "delta";
  EXPECT_EQ(LabeledName("gola_y_us", phase_only),
            "gola_y_us{phase=\"delta\"}");
}

TEST(LabeledMetricsTest, ParseSeriesNameRoundTrips) {
  MetricLabels labels;
  labels.session_id = "12";
  labels.table = "a \"quoted\\name";
  labels.phase = "emit";
  std::string full = LabeledName("gola_z_us", labels);

  std::string base;
  std::map<std::string, std::string> parsed;
  ASSERT_TRUE(ParseSeriesName(full, &base, &parsed));
  EXPECT_EQ(base, "gola_z_us");
  EXPECT_EQ(parsed["session_id"], "12");
  EXPECT_EQ(parsed["table"], "a \"quoted\\name");  // escaping inverted
  EXPECT_EQ(parsed["phase"], "emit");

  // Bare name parses as (name, {}).
  ASSERT_TRUE(ParseSeriesName("gola_plain_total", &base, &parsed));
  EXPECT_EQ(base, "gola_plain_total");
  EXPECT_TRUE(parsed.empty());

  // Malformed label text is rejected, not mis-parsed.
  EXPECT_FALSE(ParseSeriesName("gola_bad{unterminated", &base, &parsed));
  EXPECT_FALSE(ParseSeriesName("gola_bad{k=\"v}", &base, &parsed));
}

TEST(LabeledMetricsTest, LabeledHandlesAreStableAndDistinct) {
  MetricsRegistry reg;
  MetricLabels a;
  a.session_id = "1";
  MetricLabels b;
  b.session_id = "2";
  Counter* ca = reg.GetCounter("gola_fleet_total", a);
  Counter* cb = reg.GetCounter("gola_fleet_total", b);
  EXPECT_NE(ca, cb);  // different label sets → different children
  EXPECT_EQ(reg.GetCounter("gola_fleet_total", a), ca);  // same set → same
  // The labeled child is the same metric as the inline-labeled name.
  EXPECT_EQ(reg.GetCounter("gola_fleet_total{session_id=\"1\"}"), ca);

  ca->Add(3);
  cb->Add(5);
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("gola_fleet_total{session_id=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("gola_fleet_total{session_id=\"2\"} 5"),
            std::string::npos);
}

TEST(RegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c_total");
  Histogram* h = reg.GetHistogram("h_us");
  c->Add(5);
  h->Record(10);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->Count(), 0);
  EXPECT_EQ(reg.GetCounter("c_total"), c);  // same handle after Reset
}

TEST(RegistryTest, SnapshotJsonIsWellFormedEnough) {
  MetricsRegistry reg;
  reg.GetCounter("a_total")->Add(1);
  reg.GetHistogram("b_us")->Record(5);
  std::string json = reg.Snapshot().ToJson();
  while (!json.empty() && json.back() == '\n') json.pop_back();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsEnabledTest, ToggleIsObserved) {
  bool initial = MetricsEnabled();
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(initial);
}

// ------------------------------------------------ logging satellites ------

TEST(LoggingTest, ParseLogLevelNamesAndDigits) {
  using internal::LogLevel;
  using internal::ParseLogLevel;
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("fatal", LogLevel::kInfo), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("silent", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("5", LogLevel::kInfo), LogLevel::kOff);
  // Unrecognized / null → fallback.
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("7", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kError), LogLevel::kError);
}

TEST(LoggingTest, ConcurrentLogLinesDoNotInterleave) {
  // LogMessage writes each record with a single fwrite, so lines from
  // concurrent workers must come out whole. Redirect stderr to a temp file
  // and check every line carries exactly one homogeneous payload.
  internal::LogLevel saved = internal::GetLogLevel();
  internal::SetLogLevel(internal::LogLevel::kInfo);

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  std::fflush(stderr);
  int saved_fd = dup(fileno(stderr));
  ASSERT_GE(saved_fd, 0);
  ASSERT_GE(dup2(fileno(tmp), fileno(stderr)), 0);

  constexpr int kLines = 200;
  {
    ThreadPool pool(4);
    pool.ParallelFor(4, [&](size_t worker) {
      const std::string payload =
          (worker % 2 == 0) ? std::string(40, 'a') : std::string(40, 'b');
      for (int i = 0; i < kLines; ++i) GOLA_LOG(Info) << payload;
    });
  }

  std::fflush(stderr);
  dup2(saved_fd, fileno(stderr));
  close(saved_fd);
  internal::SetLogLevel(saved);

  std::rewind(tmp);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0) content.append(buf, n);
  std::fclose(tmp);

  int lines = 0;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    // A whole record: one ISO-8601 millisecond timestamp, one level tag,
    // one thread id, and one homogeneous payload.
    ASSERT_GE(line.size(), 25u) << line;
    EXPECT_EQ(line[0], '[') << line;
    EXPECT_EQ(line[5], '-') << line;   // [YYYY-MM-DDTHH:MM:SS.mmmZ ...
    EXPECT_EQ(line[11], 'T') << line;
    EXPECT_EQ(line[20], '.') << line;
    EXPECT_EQ(line[24], 'Z') << line;
    EXPECT_NE(line.find(" INFO "), std::string::npos) << line;
    EXPECT_NE(line.find(" tid="), std::string::npos) << line;
    bool has_a = line.find(std::string(40, 'a')) != std::string::npos;
    bool has_b = line.find(std::string(40, 'b')) != std::string::npos;
    EXPECT_TRUE(has_a != has_b) << "interleaved record: " << line;
  }
  EXPECT_EQ(lines, 4 * kLines);
}

}  // namespace
}  // namespace obs
}  // namespace gola

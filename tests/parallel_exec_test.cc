// Partition-parallel batch execution: with a worker pool the engine splits
// chunks across threads and merges partial aggregation states — results
// must be identical (up to FP reassociation) to sequential execution.
// This is the single-node stand-in for the paper's Spark executors.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "gola/gola.h"

namespace gola {
namespace {

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(33);
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"g", TypeId::kInt64}, {"x", TypeId::kFloat64}, {"s", TypeId::kString}});
    TableBuilder builder(schema, /*chunk_size=*/500);  // many chunks
    const char* cats[] = {"a", "b", "c", "d"};
    for (int i = 0; i < 20000; ++i) {
      builder.AppendRow({Value::Int(rng.UniformInt(1, 50)),
                         Value::Float(rng.LogNormal(0.5, 1.0)),
                         Value::String(cats[rng.NextBelow(4)])});
    }
    GOLA_CHECK_OK(engine_.RegisterTable("t", builder.Finish()));
  }

  void ExpectSameResults(const std::string& sql) {
    auto compiled = engine_.Compile(sql);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    BatchExecutor exec(&engine_.catalog());

    BatchExecOptions sequential;
    auto a = exec.Execute(*compiled, sequential);
    ASSERT_TRUE(a.ok()) << a.status().ToString();

    ThreadPool pool(4);
    BatchExecOptions parallel;
    parallel.pool = &pool;
    auto b = exec.Execute(*compiled, parallel);
    ASSERT_TRUE(b.ok()) << b.status().ToString();

    ASSERT_EQ(a->num_rows(), b->num_rows()) << sql;
    for (int64_t r = 0; r < a->num_rows(); ++r) {
      for (size_t c = 0; c < a->schema()->num_fields(); ++c) {
        Value va = a->At(r, static_cast<int>(c));
        Value vb = b->At(r, static_cast<int>(c));
        if (va.type() == TypeId::kString || va.is_null()) {
          EXPECT_TRUE(va == vb || (va.is_null() && vb.is_null())) << sql;
        } else {
          double da = va.ToDouble().ValueOr(1e99);
          double db = vb.ToDouble().ValueOr(-1e99);
          EXPECT_NEAR(da, db, 1e-9 * (1 + std::fabs(da)))
              << sql << " row " << r << " col " << c;
        }
      }
    }
  }

  Engine engine_;
};

TEST_F(ParallelExecTest, GlobalAggregate) {
  ExpectSameResults("SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t");
}

TEST_F(ParallelExecTest, GroupByWithFilter) {
  ExpectSameResults(
      "SELECT g, SUM(x) AS sx, COUNT(*) AS n FROM t WHERE x > 1 "
      "GROUP BY g ORDER BY g");
}

TEST_F(ParallelExecTest, NestedAggregateQuery) {
  ExpectSameResults(
      "SELECT s, AVG(x) AS m FROM t WHERE x > (SELECT AVG(x) FROM t) "
      "GROUP BY s ORDER BY s");
}

TEST_F(ParallelExecTest, MembershipQuery) {
  ExpectSameResults(
      "SELECT COUNT(*) FROM t WHERE g IN "
      "(SELECT g FROM t GROUP BY g HAVING SUM(x) > 500)");
}

TEST_F(ParallelExecTest, RepeatedRunsAreDeterministic) {
  ThreadPool pool(4);
  auto compiled = engine_.Compile("SELECT g, SUM(x) AS sx FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(compiled.ok());
  BatchExecutor exec(&engine_.catalog());
  BatchExecOptions opts;
  opts.pool = &pool;
  auto first = exec.Execute(*compiled, opts);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = exec.Execute(*compiled, opts);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->num_rows(), first->num_rows());
    for (int64_t r = 0; r < first->num_rows(); ++r) {
      EXPECT_NEAR(again->At(r, 1).ToDouble().ValueOr(0),
                  first->At(r, 1).ToDouble().ValueOr(1), 1e-9);
    }
  }
}

}  // namespace
}  // namespace gola

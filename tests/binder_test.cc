// Binder / lineage-block compilation: block shapes, subquery lifting,
// correlation detection, conjunct classification and the error surface.
#include "plan/binder.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace gola {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fact = std::make_shared<Schema>(std::vector<Field>{
        {"k", TypeId::kInt64},
        {"grp", TypeId::kInt64},
        {"x", TypeId::kFloat64},
        {"y", TypeId::kFloat64},
        {"name", TypeId::kString},
    });
    catalog_.RegisterTable("fact", std::make_shared<Table>(Table(fact)));
    auto dim = std::make_shared<Schema>(std::vector<Field>{
        {"dk", TypeId::kInt64}, {"label", TypeId::kString}});
    catalog_.RegisterTable("dim", std::make_shared<Table>(Table(dim)));
  }

  Result<CompiledQuery> Bind(const std::string& sql) {
    auto stmt = ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    return BindQuery(**stmt, catalog_);
  }

  Catalog catalog_;
};

TEST_F(BinderTest, SimpleAggregateBlock) {
  auto q = Bind("SELECT AVG(x) FROM fact WHERE y > 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->blocks.size(), 1u);
  const BlockDef& root = q->root();
  EXPECT_EQ(root.kind, BlockKind::kRoot);
  EXPECT_TRUE(root.is_aggregate);
  EXPECT_EQ(root.certain_conjuncts.size(), 1u);
  EXPECT_TRUE(root.uncertain_conjuncts.empty());
  ASSERT_EQ(root.aggs.size(), 1u);
  EXPECT_EQ(root.aggs[0].call->agg_kind, AggKind::kAvg);
}

TEST_F(BinderTest, SubqueryLiftedIntoScalarBlock) {
  auto q = Bind("SELECT AVG(x) FROM fact WHERE y > (SELECT AVG(y) FROM fact)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->blocks.size(), 2u);
  EXPECT_EQ(q->blocks[0].kind, BlockKind::kScalar);
  EXPECT_EQ(q->blocks[0].id, 0);
  const BlockDef& root = q->root();
  ASSERT_EQ(root.uncertain_conjuncts.size(), 1u);
  const UncertainConjunct& uc = root.uncertain_conjuncts[0];
  EXPECT_EQ(uc.form, UncertainConjunct::Form::kScalarCmp);
  EXPECT_EQ(uc.cmp, CmpOp::kGt);
  EXPECT_EQ(uc.subquery_id, 0);
  EXPECT_EQ(uc.outer_key, nullptr);
  EXPECT_EQ(root.depends_on, std::vector<int>{0});
}

TEST_F(BinderTest, FlippedComparisonNormalized) {
  // Subquery on the left side must normalize to lhs-op-subquery form.
  auto q = Bind("SELECT COUNT(*) FROM fact WHERE (SELECT AVG(y) FROM fact) < y");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const UncertainConjunct& uc = q->root().uncertain_conjuncts[0];
  EXPECT_EQ(uc.form, UncertainConjunct::Form::kScalarCmp);
  EXPECT_EQ(uc.cmp, CmpOp::kGt);  // y > subquery
}

TEST_F(BinderTest, CorrelationDetected) {
  auto q = Bind(
      "SELECT COUNT(*) FROM fact f "
      "WHERE x > (SELECT AVG(x) FROM fact t WHERE t.grp = f.grp)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const BlockDef& inner = q->blocks[0];
  ASSERT_NE(inner.corr_key, nullptr);
  ASSERT_EQ(inner.group_by.size(), 1u);  // implicit group-by the corr key
  const UncertainConjunct& uc = q->root().uncertain_conjuncts[0];
  ASSERT_NE(uc.outer_key, nullptr);
  EXPECT_EQ(uc.outer_key->column_name, "f.grp");
}

TEST_F(BinderTest, MembershipBlock) {
  auto q = Bind(
      "SELECT COUNT(*) FROM fact WHERE grp IN "
      "(SELECT grp FROM fact GROUP BY grp HAVING SUM(x) > 100)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const BlockDef& inner = q->blocks[0];
  EXPECT_EQ(inner.kind, BlockKind::kMembership);
  EXPECT_EQ(inner.membership_key_index, 0);
  EXPECT_EQ(inner.having_certain.size(), 1u);
  const UncertainConjunct& uc = q->root().uncertain_conjuncts[0];
  EXPECT_EQ(uc.form, UncertainConjunct::Form::kMembership);
}

TEST_F(BinderTest, AffineWrappersPeeledIntoBareForm) {
  // Affine transforms of the subquery value normalize to the bare form so
  // range classification applies: x > 1.5*S  ⇔  x/1.5 > S.
  for (const char* sql : {
           "SELECT COUNT(*) FROM fact WHERE x > 1.5 * (SELECT AVG(x) FROM fact)",
           "SELECT COUNT(*) FROM fact WHERE x > (SELECT AVG(x) FROM fact) / 2",
           "SELECT COUNT(*) FROM fact WHERE x < (SELECT AVG(x) FROM fact) + 10",
           "SELECT COUNT(*) FROM fact WHERE x < 3 + 2 * (SELECT AVG(x) FROM fact)",
       }) {
    auto q = Bind(sql);
    ASSERT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
    ASSERT_EQ(q->root().uncertain_conjuncts.size(), 1u) << sql;
    EXPECT_EQ(q->root().uncertain_conjuncts[0].form,
              UncertainConjunct::Form::kScalarCmp)
        << sql;
  }
}

TEST_F(BinderTest, NegativeMultiplierFlipsComparison) {
  auto q = Bind("SELECT COUNT(*) FROM fact WHERE x > -2 * (SELECT AVG(x) FROM fact)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const UncertainConjunct& uc = q->root().uncertain_conjuncts[0];
  ASSERT_EQ(uc.form, UncertainConjunct::Form::kScalarCmp);
  EXPECT_EQ(uc.cmp, CmpOp::kLt);  // dividing by a negative flips >
}

TEST_F(BinderTest, OpaqueConjunctFallback) {
  // A non-affine wrapper (function call) around the subquery stays opaque
  // (still executable with point estimates, always-uncertain online).
  auto q = Bind("SELECT COUNT(*) FROM fact WHERE x > abs((SELECT AVG(x) FROM fact))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->root().uncertain_conjuncts[0].form, UncertainConjunct::Form::kOpaque);
}

TEST_F(BinderTest, HavingWithSubqueryIsUncertain) {
  auto q = Bind(
      "SELECT grp, SUM(x) AS v FROM fact GROUP BY grp "
      "HAVING SUM(x) > (SELECT SUM(x) * 0.1 FROM fact)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->root().having_certain.empty());
  ASSERT_EQ(q->root().having_uncertain.size(), 1u);
}

TEST_F(BinderTest, HavingAddsAggSlots) {
  // The HAVING aggregate is not in the select list: it must get its own
  // slot and the post-agg schema must cover it.
  auto q = Bind("SELECT grp FROM fact GROUP BY grp HAVING AVG(y) > 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->root().aggs.size(), 1u);
  EXPECT_EQ(q->root().post_agg_schema->num_fields(), 2u);
}

TEST_F(BinderTest, DuplicateAggregatesShareSlot) {
  auto q = Bind("SELECT SUM(x), SUM(x) + 1 FROM fact");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->root().aggs.size(), 1u);
}

TEST_F(BinderTest, DimensionJoinPlanned) {
  auto q = Bind("SELECT AVG(x) FROM fact, dim WHERE k = dk AND label = 'a'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const BlockDef& root = q->root();
  ASSERT_EQ(root.dim_joins.size(), 1u);
  EXPECT_EQ(root.dim_joins[0].table, "dim");
  // Input layout = fact columns then dim columns.
  EXPECT_EQ(root.input_schema->num_fields(), 7u);
  EXPECT_EQ(root.certain_conjuncts.size(), 1u);  // the label filter
}

TEST_F(BinderTest, OrderByOrdinalAndAlias) {
  auto q = Bind("SELECT grp, SUM(x) AS v FROM fact GROUP BY grp ORDER BY 2 DESC, v");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->root().order_by.size(), 2u);
}

// ------------------------------------------------------------ errors ----

TEST_F(BinderTest, ColumnNotInGroupByRejected) {
  auto q = Bind("SELECT y, SUM(x) FROM fact GROUP BY grp");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(BinderTest, AggregateInWhereRejected) {
  EXPECT_FALSE(Bind("SELECT 1 FROM fact WHERE SUM(x) > 3").ok());
}

TEST_F(BinderTest, ScalarSubqueryMustSelectOneItem) {
  EXPECT_FALSE(Bind("SELECT 1 FROM fact WHERE x > (SELECT x, y FROM fact)").ok());
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_EQ(Bind("SELECT 1 FROM nothere").status().code(), StatusCode::kKeyError);
  EXPECT_EQ(Bind("SELECT nope FROM fact").status().code(), StatusCode::kKeyError);
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  auto other = std::make_shared<Schema>(std::vector<Field>{
      {"k", TypeId::kInt64}, {"x", TypeId::kFloat64}});
  catalog_.RegisterTable("other", std::make_shared<Table>(Table(other)));
  auto q = Bind("SELECT AVG(x) FROM fact, other WHERE fact.k = other.k");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, CartesianProductRejected) {
  EXPECT_FALSE(Bind("SELECT COUNT(*) FROM fact, dim").ok());
}

TEST_F(BinderTest, HavingWithoutAggregationRejected) {
  EXPECT_FALSE(Bind("SELECT x FROM fact HAVING x > 1").ok());
}

TEST_F(BinderTest, TypeErrorsSurface) {
  EXPECT_EQ(Bind("SELECT name + 1 FROM fact").status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Bind("SELECT 1 FROM fact WHERE name > 3").status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Bind("SELECT SUM(name) FROM fact").status().code(), StatusCode::kTypeError);
}

}  // namespace
}  // namespace gola

// Edge cases of the online engine: degenerate sizes, NULL-heavy data,
// string group keys, dimension joins (§2: only the fact table streams),
// every aggregate kind maintained online, and option extremes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "gola/gola.h"

namespace gola {
namespace {

class OnlineEdgeTest : public ::testing::Test {
 protected:
  void Register(const std::string& name, Table t) {
    GOLA_CHECK_OK(engine_.RegisterTable(name, std::move(t)));
  }

  /// Online final answer must equal the batch answer.
  void ExpectConverges(const std::string& sql, GolaOptions opts = {}) {
    if (opts.num_batches == 100) opts.num_batches = 7;
    opts.bootstrap_replicates = 25;
    auto online = engine_.ExecuteOnline(sql, opts);
    ASSERT_TRUE(online.ok()) << sql << ": " << online.status().ToString();
    auto last = (*online)->Run();
    ASSERT_TRUE(last.ok()) << sql << ": " << last.status().ToString();
    auto exact = engine_.ExecuteBatch(sql);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    ASSERT_EQ(last->result.num_rows(), exact->num_rows()) << sql;
    for (int64_t r = 0; r < exact->num_rows(); ++r) {
      for (size_t c = 0; c < exact->schema()->num_fields(); ++c) {
        Value a = last->result.At(r, static_cast<int>(c));
        Value b = exact->At(r, static_cast<int>(c));
        if (b.is_null()) {
          EXPECT_TRUE(a.is_null()) << sql;
        } else if (b.type() == TypeId::kString) {
          EXPECT_TRUE(a == b) << sql;
        } else {
          EXPECT_NEAR(a.ToDouble().ValueOr(1e99), b.ToDouble().ValueOr(-1e99),
                      1e-7 * (1 + std::fabs(b.ToDouble().ValueOr(0))))
              << sql << " row " << r << " col " << c;
        }
      }
    }
  }

  Engine engine_;
};

TEST_F(OnlineEdgeTest, TinyTableFewerRowsThanBatches) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  for (int i = 1; i <= 5; ++i) b.AppendRow({Value::Float(i)});
  Register("tiny", b.Finish());
  GolaOptions opts;
  opts.num_batches = 20;  // more batches than rows
  ExpectConverges("SELECT SUM(x), AVG(x), COUNT(*) FROM tiny", opts);
}

TEST_F(OnlineEdgeTest, SingleBatchDegeneratesToBatchEngine) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) b.AppendRow({Value::Float(rng.NextDouble())});
  Register("t", b.Finish());
  GolaOptions opts;
  opts.num_batches = 1;
  ExpectConverges("SELECT AVG(x) FROM t WHERE x > (SELECT AVG(x) FROM t)", opts);
}

TEST_F(OnlineEdgeTest, EmptySelectionStillEmitsGlobalRow) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  for (int i = 0; i < 100; ++i) b.AppendRow({Value::Float(1.0)});
  Register("t", b.Finish());
  // Nothing passes the filter: SUM is NULL, COUNT is 0, every batch.
  GolaOptions opts;
  opts.num_batches = 4;
  opts.bootstrap_replicates = 10;
  auto online = engine_.ExecuteOnline("SELECT SUM(x), COUNT(*) FROM t WHERE x > 5", opts);
  ASSERT_TRUE(online.ok());
  while (!(*online)->done()) {
    auto u = (*online)->Step();
    ASSERT_TRUE(u.ok());
    ASSERT_EQ(u->result.num_rows(), 1);
    EXPECT_TRUE(u->result.At(0, 0).is_null());
    EXPECT_DOUBLE_EQ(u->result.At(0, 1).ToDouble().ValueOr(-1), 0.0);
  }
}

TEST_F(OnlineEdgeTest, NullHeavyColumn) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"g", TypeId::kInt64}, {"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  Rng rng(6);
  for (int i = 0; i < 600; ++i) {
    // Two thirds of the measurements are NULL.
    Value x = rng.Bernoulli(0.66) ? Value::Null() : Value::Float(rng.Normal(10, 2));
    b.AppendRow({Value::Int(rng.UniformInt(1, 3)), x});
  }
  Register("t", b.Finish());
  ExpectConverges(
      "SELECT g, COUNT(*) AS n, COUNT(x) AS nx, AVG(x) AS m FROM t GROUP BY g ORDER BY g");
}

TEST_F(OnlineEdgeTest, StringGroupKeysOnline) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"label", TypeId::kString}, {"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  Rng rng(7);
  const char* labels[] = {"red", "green", "blue"};
  for (int i = 0; i < 500; ++i) {
    b.AppendRow({Value::String(labels[rng.NextBelow(3)]),
                 Value::Float(rng.Exponential(5))});
  }
  Register("t", b.Finish());
  ExpectConverges(
      "SELECT label, SUM(x) AS s FROM t "
      "WHERE x > (SELECT AVG(x) FROM t) GROUP BY label ORDER BY label");
}

TEST_F(OnlineEdgeTest, DimensionJoinWhileStreamingFact) {
  // §2: stream the fact table, read the dimension in entirety.
  auto fact_schema = std::make_shared<Schema>(
      std::vector<Field>{{"k", TypeId::kInt64}, {"v", TypeId::kFloat64}});
  TableBuilder fact(fact_schema);
  Rng rng(8);
  for (int i = 0; i < 800; ++i) {
    fact.AppendRow({Value::Int(rng.UniformInt(1, 10)), Value::Float(rng.Normal(20, 5))});
  }
  Register("fact", fact.Finish());
  auto dim_schema = std::make_shared<Schema>(
      std::vector<Field>{{"dk", TypeId::kInt64}, {"region", TypeId::kString}});
  TableBuilder dim(dim_schema);
  for (int i = 1; i <= 10; ++i) {
    dim.AppendRow({Value::Int(i), Value::String(i <= 5 ? "east" : "west")});
  }
  Register("dim", dim.Finish());
  ExpectConverges(
      "SELECT region, AVG(v) AS m FROM fact, dim WHERE k = dk "
      "AND v > (SELECT AVG(v) FROM fact) GROUP BY region ORDER BY region");
}

TEST_F(OnlineEdgeTest, AllAggregateKindsOnline) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) b.AppendRow({Value::Float(rng.Normal(100, 15))});
  Register("t", b.Finish());
  // MIN/MAX/VAR/STDDEV/QUANTILE use the generic replicate path; QUANTILE's
  // reservoir is deterministic so online == batch holds exactly.
  ExpectConverges(
      "SELECT MIN(x), MAX(x), VAR(x), STDDEV(x), QUANTILE(x, 0.9), COUNT(*) FROM t");
}

TEST_F(OnlineEdgeTest, LimitZero) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"g", TypeId::kInt64}, {"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  for (int i = 0; i < 100; ++i) b.AppendRow({Value::Int(i % 5), Value::Float(i)});
  Register("t", b.Finish());
  GolaOptions opts;
  opts.num_batches = 3;
  opts.bootstrap_replicates = 10;
  auto online = engine_.ExecuteOnline(
      "SELECT g, SUM(x) FROM t GROUP BY g ORDER BY g LIMIT 0", opts);
  ASSERT_TRUE(online.ok());
  auto last = (*online)->Run();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->result.num_rows(), 0);
}

TEST_F(OnlineEdgeTest, PartitionWiseRandomnessMode) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"x", TypeId::kFloat64}});
  TableBuilder b(schema, /*chunk_size=*/50);
  Rng rng(10);
  for (int i = 0; i < 500; ++i) b.AppendRow({Value::Float(rng.NextDouble())});
  Register("t", b.Finish());
  GolaOptions opts;
  opts.num_batches = 10;
  opts.row_shuffle = false;  // §2 default: randomly ordered partitions
  ExpectConverges("SELECT AVG(x) FROM t WHERE x > (SELECT AVG(x) FROM t)", opts);
}

TEST_F(OnlineEdgeTest, UdafScalesWithMultiplicityOnline) {
  SimpleUdafSpec weighted_total;
  weighted_total.name = "double_sum";
  weighted_total.scales_with_multiplicity = true;
  weighted_total.step = [](std::vector<double>& acc, double v, double w) {
    acc[0] += 2 * v * w;
  };
  weighted_total.merge = [](std::vector<double>& acc, const std::vector<double>& o) {
    acc[0] += o[0];
  };
  weighted_total.finalize = [](const std::vector<double>& acc, double scale) {
    return acc[0] * scale;
  };
  GOLA_CHECK_OK(RegisterUdaf(weighted_total));

  auto schema = std::make_shared<Schema>(std::vector<Field>{{"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  for (int i = 1; i <= 300; ++i) b.AppendRow({Value::Float(1.0)});
  Register("t", b.Finish());

  GolaOptions opts;
  opts.num_batches = 3;
  opts.bootstrap_replicates = 10;
  auto online = engine_.ExecuteOnline("SELECT double_sum(x) FROM t", opts);
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  // After batch 1 (100 rows, scale 3): estimate = 2*100*3 = 600.
  auto u = (*online)->Step();
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(u->result.At(0, 0).ToDouble().ValueOr(0), 600.0, 1e-9);
  auto last = (*online)->Run();
  ASSERT_TRUE(last.ok());
  EXPECT_NEAR(last->result.At(0, 0).ToDouble().ValueOr(0), 600.0, 1e-9);
}

TEST_F(OnlineEdgeTest, ForcedFailuresStillExactForEveryConjunctForm) {
  // ε = 0 and no support gate → razor-thin envelopes → frequent range
  // failures. The recompute path must preserve exactness for the global
  // scalar, correlated scalar and membership forms alike.
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"g", TypeId::kInt64}, {"x", TypeId::kFloat64},
                         {"y", TypeId::kFloat64}});
  TableBuilder b(schema);
  Rng rng(12);
  for (int i = 0; i < 1200; ++i) {
    b.AppendRow({Value::Int(rng.UniformInt(1, 5)),
                 Value::Float(rng.LogNormal(1.0, 0.8)),
                 Value::Float(rng.Normal(30, 9))});
  }
  Register("t", b.Finish());

  GolaOptions opts;
  opts.num_batches = 8;
  opts.epsilon_mult = 0.0;
  opts.min_group_support = 0;
  const char* queries[] = {
      "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t)",
      "SELECT COUNT(*) FROM t s WHERE x > (SELECT AVG(x) FROM t u WHERE u.g = s.g)",
      "SELECT SUM(y) FROM t WHERE g IN (SELECT g FROM t GROUP BY g "
      "                                 HAVING AVG(x) > 2.5)",
  };
  for (size_t q = 0; q < 3; ++q) {
    const char* sql = queries[q];
    SCOPED_TRACE(sql);
    ExpectConverges(sql, opts);
    auto online = engine_.ExecuteOnline(sql, opts);
    ASSERT_TRUE(online.ok());
    auto last = (*online)->Run();
    ASSERT_TRUE(last.ok());
    // The scalar forms must actually have exercised the failure path at
    // ε = 0. (Membership uses decision-validity monitoring, which may
    // legitimately never trip when no decision sits near the threshold.)
    if (q < 2) {
      EXPECT_GT(last->recomputes_so_far, 0) << sql;
    }
  }
}

TEST_F(OnlineEdgeTest, StepAfterDoneErrors) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"x", TypeId::kFloat64}});
  TableBuilder b(schema);
  for (int i = 0; i < 10; ++i) b.AppendRow({Value::Float(i)});
  Register("t", b.Finish());
  GolaOptions opts;
  opts.num_batches = 2;
  opts.bootstrap_replicates = 5;
  auto online = engine_.ExecuteOnline("SELECT AVG(x) FROM t", opts);
  ASSERT_TRUE(online.ok());
  ASSERT_TRUE((*online)->Run().ok());
  EXPECT_TRUE((*online)->done());
  EXPECT_FALSE((*online)->Step().ok());
}

}  // namespace
}  // namespace gola

// Chaos suite (fault-injection under a randomized workload): run a spread of
// structurally different nested-aggregate queries twice — once clean, once
// with probabilistic failpoints armed across every hot path — and require
// every per-batch update to be bit-identical. This is the end-to-end claim of
// the resilience layer: injected faults are invisible in results, visible
// only in retry counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "gola/gola.h"

namespace gola {
namespace {

Table MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g1", TypeId::kInt64},
      {"g2", TypeId::kInt64},
      {"a", TypeId::kFloat64},
      {"b", TypeId::kFloat64},
      {"c", TypeId::kFloat64},
  });
  TableBuilder builder(schema, 200);
  for (int64_t i = 0; i < n; ++i) {
    builder.AppendRow({Value::Int(rng.UniformInt(1, 4)),
                       Value::Int(rng.UniformInt(1, 7)),
                       Value::Float(rng.LogNormal(1.5, 0.6)),
                       Value::Float(rng.Normal(40, 12)),
                       Value::Float(rng.UniformDouble(0, 100))});
  }
  return builder.Finish();
}

/// Structurally different shapes: global and grouped aggregates, correlated
/// and uncorrelated subqueries, one and two uncertain conjuncts.
const char* kWorkload[] = {
    "SELECT AVG(a) AS m, COUNT(*) AS n FROM d d "
    "WHERE b > (SELECT AVG(b) FROM d)",
    "SELECT g1, SUM(a) AS m FROM d d "
    "WHERE c < 1.1 * (SELECT AVG(c) FROM d) GROUP BY g1 ORDER BY g1",
    "SELECT g2, AVG(b) AS m, COUNT(*) AS n FROM d d "
    "WHERE a > (SELECT AVG(a) FROM d u WHERE u.g2 = d.g2) "
    "GROUP BY g2 ORDER BY g2",
    "SELECT MAX(c) AS m, MIN(b) AS mn FROM d d "
    "WHERE a > 0.8 * (SELECT AVG(a) FROM d) AND b < (SELECT AVG(b) FROM d)",
    "SELECT g1, STDDEV(c) AS m FROM d d "
    "WHERE b >= (SELECT AVG(b) FROM d u WHERE u.g1 = d.g1) "
    "GROUP BY g1 ORDER BY g1",
};

struct RunResult {
  std::vector<Table> results;
  std::vector<int64_t> uncertain;
  int recomputes = 0;
};

RunResult RunQuery(Engine* engine, const std::string& sql,
                   const GolaOptions& opts) {
  RunResult out;
  auto online = engine->ExecuteOnline(sql, opts);
  GOLA_CHECK_OK(online.status());
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    GOLA_CHECK_OK(update.status());
    out.results.push_back(std::move(update->result));
    out.uncertain.push_back(update->uncertain_tuples);
  }
  out.recomputes = (*online)->recomputes();
  return out;
}

void ExpectIdentical(const RunResult& got, const RunResult& want,
                     const std::string& sql) {
  ASSERT_EQ(got.results.size(), want.results.size()) << sql;
  ASSERT_EQ(got.uncertain, want.uncertain) << sql;
  for (size_t u = 0; u < want.results.size(); ++u) {
    const Table& g = got.results[u];
    const Table& w = want.results[u];
    ASSERT_EQ(g.num_rows(), w.num_rows()) << sql << " @update " << u;
    for (int64_t r = 0; r < w.num_rows(); ++r) {
      for (size_t c = 0; c < w.schema()->num_fields(); ++c) {
        ASSERT_TRUE(g.At(r, static_cast<int>(c)) == w.At(r, static_cast<int>(c)))
            << sql << " @update " << u << " row " << r << " col "
            << w.schema()->field(c).name;
      }
    }
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::DisarmAll();
    GOLA_CHECK_OK(engine_.RegisterTable("d", MakeData(2000, 404)));
  }
  void TearDown() override { fail::DisarmAll(); }

  Engine engine_;
};

TEST_F(ChaosTest, WorkloadIsBitIdenticalUnderInjectedFaults) {
  ThreadPool pool(4);
  int64_t total_fires = 0;

  for (size_t q = 0; q < sizeof(kWorkload) / sizeof(kWorkload[0]); ++q) {
    const std::string sql = kWorkload[q];
    SCOPED_TRACE(sql);

    GolaOptions opts;
    opts.num_batches = 8;
    opts.bootstrap_replicates = 24;
    opts.seed = 9000 + static_cast<uint64_t>(q);
    // With p≈0.02 per hit, exhausting 4 retries needs 5 consecutive fires
    // (p^5 ≈ 3e-9 per morsel) — the workload completes with certainty while
    // still exercising the retry path many times across the suite.
    opts.max_morsel_retries = 4;
    opts.retry_backoff_ms = 0;
    opts.pool = &pool;

    fail::DisarmAll();
    RunResult clean = RunQuery(&engine_, sql, opts);

    fail::SetSeed(500 + q);
    GOLA_CHECK_OK(fail::Configure(
        "exec.morsel=prob(0.02),threadpool.task=prob(0.02),"
        "bootstrap.replicate=prob(0.01)"));
    RunResult chaotic = RunQuery(&engine_, sql, opts);
    total_fires += fail::Fires("exec.morsel") + fail::Fires("threadpool.task") +
                   fail::Fires("bootstrap.replicate");
    fail::DisarmAll();

    ExpectIdentical(chaotic, clean, sql);
  }
  EXPECT_GT(total_fires, 0)
      << "chaos run never injected a fault — probabilities too low for the "
         "workload size, the suite is not testing anything";
}

TEST_F(ChaosTest, ForcedRebuildsAcrossTheWorkloadStayCorrect) {
  // Same bit-identity bar, but with a *guaranteed* envelope failure per
  // query: faults during the recompute path itself must also be invisible.
  for (size_t q = 0; q < sizeof(kWorkload) / sizeof(kWorkload[0]); ++q) {
    const std::string sql = kWorkload[q];
    SCOPED_TRACE(sql);

    GolaOptions opts;
    opts.num_batches = 6;
    opts.bootstrap_replicates = 20;
    opts.seed = 7100 + static_cast<uint64_t>(q);
    opts.max_morsel_retries = 4;
    opts.retry_backoff_ms = 0;

    fail::DisarmAll();
    RunResult clean = RunQuery(&engine_, sql, opts);
    // Clean runs at this scale are recompute-free, so final answers with and
    // without the forced rebuild coming out identical is a real statement
    // about Rebuild correctness, not an accident of matching schedules.
    ASSERT_EQ(clean.recomputes, 0) << sql;

    GOLA_CHECK_OK(fail::Arm("gola.check_envelopes", "nth(3)"));
    GOLA_CHECK_OK(fail::Arm("gola.rebuild", "once"));
    RunResult forced = RunQuery(&engine_, sql, opts);
    fail::DisarmAll();

    EXPECT_GT(forced.recomputes, 0) << sql;
    // A rebuild re-installs classification envelopes at a different batch
    // than the clean run, so the deterministic/uncertain split — and with it
    // the replicate state behind the CI companion cells (_lo/_hi/_rsd) —
    // legitimately diverges. The converged *estimates* must still be exact.
    ASSERT_FALSE(forced.results.empty());
    const Table& g = forced.results.back();
    const Table& w = clean.results.back();
    ASSERT_EQ(g.num_rows(), w.num_rows()) << sql;
    auto is_ci_companion = [](const std::string& name) {
      auto ends_with = [&](const char* suffix) {
        std::string s(suffix);
        return name.size() > s.size() &&
               name.compare(name.size() - s.size(), s.size(), s) == 0;
      };
      return ends_with("_lo") || ends_with("_hi") || ends_with("_rsd");
    };
    for (int64_t r = 0; r < w.num_rows(); ++r) {
      for (size_t c = 0; c < w.schema()->num_fields(); ++c) {
        if (is_ci_companion(w.schema()->field(c).name)) continue;
        ASSERT_TRUE(g.At(r, static_cast<int>(c)) == w.At(r, static_cast<int>(c)))
            << sql << " row " << r << " col " << w.schema()->field(c).name;
      }
    }
  }
}

}  // namespace
}  // namespace gola

// The baselines must be semantically identical to the batch engine on
// every prefix — they differ from G-OLA only in cost. Also checks the §3.1
// cost asymmetry: CDM's per-batch scan cost grows linearly while G-OLA's
// stays near-constant.
#include <gtest/gtest.h>

#include "baseline/cdm.h"
#include "baseline/naive_ola.h"
#include "common/random.h"
#include "gola/gola.h"

namespace gola {
namespace {

Table MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", TypeId::kInt64}, {"x", TypeId::kFloat64}, {"y", TypeId::kFloat64}});
  TableBuilder builder(schema, 512);
  for (int64_t i = 0; i < n; ++i) {
    builder.AppendRow({Value::Int(rng.UniformInt(1, 10)),
                       Value::Float(rng.Exponential(20.0)),
                       Value::Float(rng.UniformDouble(0, 100))});
  }
  return builder.Finish();
}

constexpr const char* kNested =
    "SELECT AVG(y) AS avg_y, COUNT(*) AS n FROM data "
    "WHERE x > (SELECT AVG(x) FROM data)";

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GOLA_CHECK_OK(engine_.RegisterTable("data", MakeData(3000, 11)));
  }

  void ExpectMatch(const Table& a, const Table& b) {
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (int64_t r = 0; r < b.num_rows(); ++r) {
      for (size_t c = 0; c < b.schema()->num_fields(); ++c) {
        double da = a.At(r, static_cast<int>(c)).ToDouble().ValueOr(1e100);
        double db = b.At(r, static_cast<int>(c)).ToDouble().ValueOr(-1e100);
        EXPECT_NEAR(da, db, 1e-9 * (1 + std::fabs(db)));
      }
    }
  }

  Engine engine_;
};

TEST_F(BaselineTest, CdmMatchesBatchOnEveryPrefix) {
  auto query = engine_.Compile(kNested);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  CdmOptions opts;
  opts.num_batches = 8;
  opts.seed = 5;
  auto cdm = CdmExecutor::Create(&engine_.catalog(), *query, opts);
  ASSERT_TRUE(cdm.ok()) << cdm.status().ToString();

  TablePtr table = *engine_.GetTable("data");
  MiniBatchOptions part_opts;
  part_opts.num_batches = opts.num_batches;
  part_opts.seed = opts.seed;
  MiniBatchPartitioner partitioner(*table, part_opts);
  BatchExecutor batch(&engine_.catalog());

  while (!(*cdm)->done()) {
    auto update = (*cdm)->Step();
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    int64_t rows = 0;
    auto prefix = partitioner.BatchesUpTo(update->batch_index);
    for (auto* c : prefix) rows += static_cast<int64_t>(c->num_rows());
    BatchExecOptions bopts;
    bopts.scale = static_cast<double>(table->num_rows()) / static_cast<double>(rows);
    auto expected = batch.ExecuteOnChunks(*query, "data", prefix, bopts);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ExpectMatch(update->result, *expected);
  }
}

TEST_F(BaselineTest, NaiveOlaMatchesBatchOnEveryPrefix) {
  auto query = engine_.Compile(kNested);
  ASSERT_TRUE(query.ok());
  NaiveOlaOptions opts;
  opts.num_batches = 6;
  opts.seed = 5;
  auto naive = NaiveOlaExecutor::Create(&engine_.catalog(), *query, opts);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  TablePtr table = *engine_.GetTable("data");
  MiniBatchOptions part_opts;
  part_opts.num_batches = opts.num_batches;
  part_opts.seed = opts.seed;
  MiniBatchPartitioner partitioner(*table, part_opts);
  BatchExecutor batch(&engine_.catalog());

  while (!(*naive)->done()) {
    auto update = (*naive)->Step();
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    auto prefix = partitioner.BatchesUpTo(update->batch_index);
    int64_t rows = 0;
    for (auto* c : prefix) rows += static_cast<int64_t>(c->num_rows());
    BatchExecOptions bopts;
    bopts.scale = static_cast<double>(table->num_rows()) / static_cast<double>(rows);
    auto expected = batch.ExecuteOnChunks(*query, "data", prefix, bopts);
    ASSERT_TRUE(expected.ok());
    ExpectMatch(update->result, *expected);
  }
}

TEST_F(BaselineTest, CdmScanCostGrowsLinearly) {
  auto query = engine_.Compile(kNested);
  ASSERT_TRUE(query.ok());
  CdmOptions opts;
  opts.num_batches = 10;
  auto cdm = CdmExecutor::Create(&engine_.catalog(), *query, opts);
  ASSERT_TRUE(cdm.ok());
  std::vector<int64_t> scans;
  while (!(*cdm)->done()) {
    auto update = (*cdm)->Step();
    ASSERT_TRUE(update.ok());
    scans.push_back(update->rows_scanned);
  }
  // §3.1: the outer block rescans D_i each batch → last ≈ num_batches × first.
  EXPECT_GT(scans.back(), scans.front() * 4);
}

TEST_F(BaselineTest, GolaUncertainWorkStaysSmall) {
  GolaOptions opts;
  opts.num_batches = 10;
  opts.bootstrap_replicates = 40;
  auto online = engine_.ExecuteOnline(kNested, opts);
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  std::vector<int64_t> uncertain;
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    ASSERT_TRUE(update.ok());
    uncertain.push_back(update->uncertain_tuples);
  }
  // The delta-maintenance workload per batch is |U| + |ΔD|, not |D_i|:
  // after warm-up the uncertain set must stay well below the prefix size.
  int64_t batch_rows = 3000 / 10;
  for (size_t i = 2; i < uncertain.size(); ++i) {
    EXPECT_LT(uncertain[i], 3 * batch_rows) << "batch " << i + 1;
  }
}

}  // namespace
}  // namespace gola

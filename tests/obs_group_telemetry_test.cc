// Per-group convergence telemetry: cell extraction from result tables
// (including the absent-RSD regression — a failed parse must never read as
// "fully converged"), top-K ranking, churn counting, and the JSON block
// every surface renders.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gola/controller.h"
#include "gola/gola.h"
#include "obs/group_telemetry.h"

namespace gola {
namespace {

/// A grouped result table in the engine's emission shape: key column `g`,
/// aggregate `m` with `m_lo`/`m_hi`/`m_rsd` companions.
Table MakeGroupedResult(
    const std::vector<std::tuple<std::string, Value, Value, Value, Value>>& rows) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g", TypeId::kString},
      {"m", TypeId::kFloat64},
      {"m_lo", TypeId::kFloat64},
      {"m_hi", TypeId::kFloat64},
      {"m_rsd", TypeId::kFloat64}});
  TableBuilder builder(schema, 64);
  for (const auto& [g, m, lo, hi, rsd] : rows) {
    builder.AppendRow({Value::String(g), m, lo, hi, rsd});
  }
  return builder.Finish();
}

TEST(ExtractGroupCellsTest, GroupedTableYieldsOneCellPerRow) {
  Table t = MakeGroupedResult({
      {"us", Value::Float(10), Value::Float(9), Value::Float(11), Value::Float(0.05)},
      {"de", Value::Float(20), Value::Float(15), Value::Float(25), Value::Float(0.20)},
  });
  std::vector<obs::GroupCell> cells = ExtractGroupCells(t);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].group_key, "us");
  EXPECT_EQ(cells[0].column, "m");
  EXPECT_TRUE(cells[0].has_estimate);
  EXPECT_TRUE(cells[0].has_rsd);
  EXPECT_DOUBLE_EQ(cells[0].estimate, 10);
  EXPECT_DOUBLE_EQ(cells[0].half_width(), 1);
  EXPECT_EQ(cells[1].group_key, "de");
  EXPECT_DOUBLE_EQ(cells[1].rsd, 0.20);
}

TEST(ExtractGroupCellsTest, ScalarTableUsesStarKey) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"m", TypeId::kFloat64},
      {"m_lo", TypeId::kFloat64},
      {"m_hi", TypeId::kFloat64},
      {"m_rsd", TypeId::kFloat64}});
  TableBuilder builder(schema, 8);
  builder.AppendRow({Value::Float(5), Value::Float(4), Value::Float(6),
                     Value::Float(0.1)});
  std::vector<obs::GroupCell> cells = ExtractGroupCells(builder.Finish());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].group_key, "*");
}

TEST(ExtractGroupCellsTest, UnparseableRsdIsAbsentNotZero) {
  // Regression (satellite of ISSUE 8): a null RSD companion once read as
  // rsd = 0 via ValueOr(0) — i.e. "fully converged" for a cell whose error
  // is actually unknown.
  Table t = MakeGroupedResult({
      {"us", Value::Float(10), Value::Float(9), Value::Float(11), Value::Null()},
  });
  std::vector<obs::GroupCell> cells = ExtractGroupCells(t);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].has_estimate);
  EXPECT_FALSE(cells[0].has_rsd);
}

TEST(ExtractGroupCellsTest, NullEstimateIsAbsent) {
  Table t = MakeGroupedResult({
      {"us", Value::Null(), Value::Null(), Value::Null(), Value::Null()},
      {"de", Value::Float(3), Value::Float(2), Value::Float(4), Value::Float(0.2)},
  });
  std::vector<obs::GroupCell> cells = ExtractGroupCells(t);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_FALSE(cells[0].has_estimate);
  EXPECT_DOUBLE_EQ(cells[0].half_width(), 0);
  EXPECT_TRUE(cells[1].has_estimate);
}

TEST(ExtractHeadlineTest, UnparseableRsdStaysAbsent) {
  Table t = MakeGroupedResult({
      {"us", Value::Float(10), Value::Float(9), Value::Float(11), Value::Null()},
  });
  const HeadlineCell cell = ExtractHeadline(t);
  EXPECT_TRUE(cell.has_estimate);
  EXPECT_FALSE(cell.has_rsd());
  EXPECT_LT(cell.rsd, 0);  // -1 sentinel, never a fake converged 0
}

TEST(ExtractHeadlineTest, UnparseableEstimateMeansNoEstimate) {
  Table t = MakeGroupedResult({
      {"us", Value::Null(), Value::Float(9), Value::Float(11), Value::Float(0.1)},
  });
  const HeadlineCell cell = ExtractHeadline(t);
  EXPECT_FALSE(cell.has_estimate);
  EXPECT_DOUBLE_EQ(cell.half_width(), 0);
}

obs::GroupCell Cell(const std::string& key, double rsd, double half = 1) {
  obs::GroupCell c;
  c.group_key = key;
  c.column = "m";
  c.has_estimate = true;
  c.estimate = 10;
  c.ci_lo = 10 - half;
  c.ci_hi = 10 + half;
  c.has_rsd = true;
  c.rsd = rsd;
  return c;
}

TEST(GroupTelemetryTrackerTest, TopKRanksWorstFirst) {
  obs::GroupTelemetryTracker tracker(/*top_k=*/3);
  std::vector<obs::GroupCell> cells = {Cell("a", 0.01), Cell("b", 0.30),
                                       Cell("c", 0.10), Cell("d", 0.20),
                                       Cell("e", 0.05)};
  const obs::GroupConvergenceSummary& s = tracker.Observe(cells);
  EXPECT_EQ(s.cells_total, 5);
  EXPECT_EQ(s.groups_total, 5);
  ASSERT_EQ(s.top.size(), 3u);
  EXPECT_EQ(s.top[0].group_key, "b");
  EXPECT_EQ(s.top[1].group_key, "d");
  EXPECT_EQ(s.top[2].group_key, "c");
  EXPECT_DOUBLE_EQ(s.worst_rsd, 0.30);
}

TEST(GroupTelemetryTrackerTest, AbsentRsdOutranksNumericRsd) {
  obs::GroupTelemetryTracker tracker(2);
  obs::GroupCell unknown = Cell("mystery", 0);
  unknown.has_rsd = false;
  const obs::GroupConvergenceSummary& s =
      tracker.Observe({Cell("a", 0.99), unknown});
  ASSERT_EQ(s.top.size(), 2u);
  EXPECT_EQ(s.top[0].group_key, "mystery");  // unbounded uncertainty first
  EXPECT_EQ(s.cells_without_rsd, 1);
  EXPECT_DOUBLE_EQ(s.worst_rsd, 0.99);  // max over *measurable* cells
}

TEST(GroupTelemetryTrackerTest, ChurnCountsAppearedAndDisappeared) {
  obs::GroupTelemetryTracker tracker(8);
  tracker.Observe({Cell("a", 0.1), Cell("b", 0.1)});
  const obs::GroupConvergenceSummary& s2 =
      tracker.Observe({Cell("b", 0.1), Cell("c", 0.1), Cell("d", 0.1)});
  EXPECT_EQ(s2.groups_appeared, 2);     // c, d
  EXPECT_EQ(s2.groups_disappeared, 1);  // a
  // First observation: everything counts as appeared against an empty set.
  obs::GroupTelemetryTracker fresh(8);
  EXPECT_EQ(fresh.Observe({Cell("x", 0.1)}).groups_appeared, 1);
}

TEST(GroupTelemetryTrackerTest, MultiAggregateCellsShareGroupCount) {
  // Two aggregates per group: 4 cells, 2 groups.
  std::vector<obs::GroupCell> cells = {Cell("a", 0.1), Cell("b", 0.2)};
  for (auto c : {Cell("a", 0.3), Cell("b", 0.4)}) {
    c.column = "n";
    cells.push_back(c);
  }
  obs::GroupTelemetryTracker tracker(8);
  const obs::GroupConvergenceSummary& s = tracker.Observe(cells);
  EXPECT_EQ(s.cells_total, 4);
  EXPECT_EQ(s.groups_total, 2);
}

TEST(GroupConvergenceSummaryTest, ToJsonRendersAbsentAsNull) {
  obs::GroupTelemetryTracker tracker(2);
  obs::GroupCell unknown;
  unknown.group_key = "g\"1";  // must be escaped
  unknown.column = "m";
  const std::string json = tracker.Observe({unknown, Cell("a", 0.5)}).ToJson();
  EXPECT_NE(json.find("\"cells_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rsd\": null"), std::string::npos);
  EXPECT_NE(json.find("\"estimate\": null"), std::string::npos);
  EXPECT_NE(json.find("g\\\"1"), std::string::npos);
  EXPECT_NE(json.find("\"rsd\": 0.5"), std::string::npos);
}

TEST(GroupTelemetryEndToEndTest, GroupedQueryPopulatesUpdateSummary) {
  // End-to-end: a real grouped online query fills OnlineUpdate::groups with
  // a bounded summary whose worst RSD matches the emission's max_rsd.
  Rng rng(7);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g", TypeId::kString}, {"x", TypeId::kFloat64}});
  TableBuilder builder(schema, 256);
  const char* groups[] = {"a", "b", "c", "d", "e"};
  for (int64_t i = 0; i < 5000; ++i) {
    builder.AppendRow({Value::String(groups[rng.UniformInt(0, 4)]),
                       Value::Float(rng.LogNormal(2.0, 1.0))});
  }
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", builder.Finish()));
  GolaOptions opts;
  opts.num_batches = 5;
  opts.bootstrap_replicates = 50;
  opts.group_top_k = 3;
  auto online =
      engine.ExecuteOnline("SELECT g, AVG(x) AS m FROM d GROUP BY g", opts);
  ASSERT_TRUE(online.ok());
  auto update = (*online)->Step();
  ASSERT_TRUE(update.ok());
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(update->groups.groups_total, 5);
    EXPECT_EQ(update->groups.cells_total, 5);
    EXPECT_EQ(update->groups.top.size(), 3u);
    EXPECT_GT(update->groups.worst_rsd, 0);
    EXPECT_NEAR(update->groups.worst_rsd, update->max_rsd, 1e-12);
    EXPECT_EQ(update->groups.groups_appeared, 5);
  } else {
    EXPECT_TRUE(update->groups.empty());
  }
}

}  // namespace
}  // namespace gola

// Property-based sweeps (TEST_P): for random datasets, seeds and batch
// counts, the online engine's answer after *every* mini-batch must equal
// Q(D_i, k/i) recomputed from scratch by the batch engine — the invariant
// that makes G-OLA's delta maintenance semantically invisible. Swept across
// query templates covering every uncertain-conjunct form (global scalar,
// correlated scalar, membership, opaque, HAVING).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "gola/gola.h"

namespace gola {
namespace {

struct PropertyCase {
  std::string name;
  std::string sql;
  uint64_t data_seed;
  uint64_t stream_seed;
  int num_batches;
};

Table MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"k", TypeId::kInt64},
      {"grp", TypeId::kInt64},
      {"x", TypeId::kFloat64},
      {"y", TypeId::kFloat64},
      {"flag", TypeId::kInt64},
  });
  TableBuilder builder(schema, 256);
  for (int64_t i = 0; i < n; ++i) {
    builder.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(1, 6)),
                       Value::Float(rng.LogNormal(2.0, 0.7)),
                       Value::Float(rng.Normal(50, 15)),
                       Value::Int(rng.Bernoulli(0.3) ? 1 : 0)});
  }
  return builder.Finish();
}

std::vector<PropertyCase> MakeCases() {
  const char* kTemplates[][2] = {
      {"global_scalar",
       "SELECT AVG(y) AS a, COUNT(*) AS n FROM d "
       "WHERE x > (SELECT AVG(x) FROM d)"},
      {"correlated_scalar",
       "SELECT grp, SUM(y) AS s FROM d t "
       "WHERE x < (SELECT AVG(x) FROM d u WHERE u.grp = t.grp) "
       "GROUP BY grp ORDER BY grp"},
      {"membership",
       "SELECT COUNT(*) AS n FROM d WHERE grp IN "
       "(SELECT grp FROM d GROUP BY grp HAVING AVG(x) > 9)"},
      {"not_in_membership",
       "SELECT SUM(y) AS s FROM d WHERE grp NOT IN "
       "(SELECT grp FROM d GROUP BY grp HAVING AVG(x) > 9)"},
      {"peeled_affine",
       "SELECT COUNT(*) AS n FROM d "
       "WHERE x > 1.2 * (SELECT AVG(x) FROM d)"},
      {"opaque_conjunct",
       "SELECT COUNT(*) AS n FROM d "
       "WHERE x > abs((SELECT AVG(x) FROM d))"},
      {"having_subquery",
       "SELECT grp, AVG(y) AS a FROM d GROUP BY grp "
       "HAVING SUM(y) > (SELECT SUM(y) * 0.15 FROM d) ORDER BY grp"},
      {"two_conjuncts",
       "SELECT COUNT(*) AS n FROM d "
       "WHERE x > (SELECT AVG(x) FROM d) AND y < (SELECT AVG(y) FROM d) "},
  };
  std::vector<PropertyCase> cases;
  for (const auto& t : kTemplates) {
    for (uint64_t seed : {1u, 2u}) {
      PropertyCase c;
      c.name = std::string(t[0]) + "_seed" + std::to_string(seed);
      c.sql = t[1];
      c.data_seed = seed * 31;
      c.stream_seed = seed * 101 + 7;
      c.num_batches = seed % 2 == 0 ? 6 : 11;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

class GolaPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(GolaPropertyTest, PerBatchEquivalenceWithBatchEngine) {
  const PropertyCase& pc = GetParam();
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(1500, pc.data_seed)));

  auto compiled = engine.Compile(pc.sql);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  GolaOptions opts;
  opts.num_batches = pc.num_batches;
  opts.bootstrap_replicates = 30;
  opts.seed = pc.stream_seed;
  auto online = engine.ExecuteOnline(pc.sql, opts);
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  TablePtr table = *engine.GetTable("d");
  MiniBatchOptions part_opts;
  part_opts.num_batches = pc.num_batches;
  part_opts.seed = pc.stream_seed;
  MiniBatchPartitioner partitioner(*table, part_opts);
  BatchExecutor batch(&engine.catalog());

  while (!(*online)->done()) {
    auto update = (*online)->Step();
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    BatchExecOptions bopts;
    bopts.scale = update->scale;
    auto expected = batch.ExecuteOnChunks(
        *compiled, "d", partitioner.BatchesUpTo(update->batch_index), bopts);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_EQ(update->result.num_rows(), expected->num_rows())
        << "batch " << update->batch_index;
    for (int64_t r = 0; r < expected->num_rows(); ++r) {
      for (size_t c = 0; c < expected->schema()->num_fields(); ++c) {
        Value got = update->result.At(r, static_cast<int>(c));
        Value want = expected->At(r, static_cast<int>(c));
        if (want.is_null()) {
          EXPECT_TRUE(got.is_null()) << "batch " << update->batch_index;
          continue;
        }
        double dg = got.ToDouble().ValueOr(1e100);
        double dw = want.ToDouble().ValueOr(-1e100);
        ASSERT_NEAR(dg, dw, 1e-8 * (1 + std::fabs(dw)))
            << pc.name << " batch " << update->batch_index << " row " << r
            << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GolaPropertyTest, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace gola

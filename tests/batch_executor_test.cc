// End-to-end tests of the batch engine: parse → bind → execute, including
// nested aggregate subqueries (the SBI query of the paper's Example 1).
#include "exec/batch_executor.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "plan/binder.h"

namespace gola {
namespace {

SchemaPtr SessionsSchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"session_id", TypeId::kInt64},
      {"buffer_time", TypeId::kFloat64},
      {"play_time", TypeId::kFloat64},
  });
}

TablePtr MakeSessions() {
  // buffer_time: 10, 20, 30, 40; avg = 25. play_time 100..400.
  TableBuilder builder(SessionsSchema());
  for (int i = 1; i <= 4; ++i) {
    builder.AppendRow({Value::Int(i), Value::Float(i * 10.0), Value::Float(i * 100.0)});
  }
  return std::make_shared<Table>(builder.Finish());
}

class BatchExecTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_.RegisterTable("sessions", MakeSessions()); }

  Result<Table> Run(const std::string& sql, double scale = 1.0) {
    auto stmt = ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    auto query = BindQuery(**stmt, catalog_);
    if (!query.ok()) return query.status();
    BatchExecutor exec(&catalog_);
    BatchExecOptions opts;
    opts.scale = scale;
    return exec.Execute(*query, opts);
  }

  double Scalar(const Table& t) {
    EXPECT_EQ(t.num_rows(), 1);
    return t.At(0, 0).ToDouble().ValueOr(-1e18);
  }

  Catalog catalog_;
};

TEST_F(BatchExecTest, SimpleAggregate) {
  auto r = Run("SELECT AVG(buffer_time) FROM sessions");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(Scalar(*r), 25.0);
}

TEST_F(BatchExecTest, CountAndSumScale) {
  auto r = Run("SELECT COUNT(*), SUM(play_time) FROM sessions", /*scale=*/2.5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->At(0, 0).ToDouble().ValueOr(0), 4 * 2.5);
  EXPECT_DOUBLE_EQ(r->At(0, 1).ToDouble().ValueOr(0), 1000.0 * 2.5);
}

TEST_F(BatchExecTest, WhereFilter) {
  auto r = Run("SELECT COUNT(*) FROM sessions WHERE buffer_time > 15");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(Scalar(*r), 3.0);
}

TEST_F(BatchExecTest, SbiNestedAggregate) {
  // Example 1 of the paper: sessions with above-average buffering.
  auto r = Run(
      "SELECT AVG(play_time) FROM sessions "
      "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // buffer_time > 25 → rows 3 and 4 → avg(300, 400) = 350.
  EXPECT_DOUBLE_EQ(Scalar(*r), 350.0);
}

TEST_F(BatchExecTest, GroupByHaving) {
  auto r = Run(
      "SELECT session_id % 2 AS parity, SUM(play_time) AS total FROM sessions "
      "GROUP BY session_id % 2 HAVING SUM(play_time) > 450 ORDER BY total DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // parity 0: 200+400=600; parity 1: 100+300=400 (filtered out).
  ASSERT_EQ(r->num_rows(), 1);
  EXPECT_EQ(r->At(0, 0).AsInt(), 0);
  EXPECT_DOUBLE_EQ(r->At(0, 1).ToDouble().ValueOr(0), 600.0);
}

TEST_F(BatchExecTest, CorrelatedSubquery) {
  // Sessions whose play_time exceeds the average play time of sessions with
  // the same parity.
  auto r = Run(
      "SELECT COUNT(*) FROM sessions s "
      "WHERE play_time > (SELECT AVG(play_time) FROM sessions t "
      "                   WHERE t.session_id % 2 = s.session_id % 2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // parity 1 avg = 200 → row 3 (300) passes; parity 0 avg = 300 → row 4 passes.
  EXPECT_DOUBLE_EQ(Scalar(*r), 2.0);
}

TEST_F(BatchExecTest, InSubquery) {
  auto r = Run(
      "SELECT COUNT(*) FROM sessions WHERE session_id IN "
      "(SELECT session_id FROM sessions GROUP BY session_id "
      " HAVING SUM(play_time) > 250)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(Scalar(*r), 2.0);
}

TEST_F(BatchExecTest, OrderByLimit) {
  auto r = Run("SELECT session_id, play_time FROM sessions ORDER BY play_time DESC LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2);
  EXPECT_EQ(r->At(0, 0).AsInt(), 4);
  EXPECT_EQ(r->At(1, 0).AsInt(), 3);
}

TEST_F(BatchExecTest, UnknownColumnErrors) {
  auto r = Run("SELECT AVG(nonexistent) FROM sessions");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
}

TEST_F(BatchExecTest, UnknownTableErrors) {
  auto r = Run("SELECT COUNT(*) FROM nope");
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace gola

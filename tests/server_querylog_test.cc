// Wide-event query-log schema tests: every terminal outcome — done,
// failed, cancelled, degraded — must leave exactly one JSONL record with
// the full field set (identity, options, volume, timing, SLO crossings,
// cumulative stats, lifecycle events, headline estimate). The records are
// what CI uploads as artifacts and what a response-time tuner would train
// on, so the schema is pinned here.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "gola/gola.h"
#include "obs/query_log.h"
#include "server/dispatcher.h"

namespace gola {
namespace server {
namespace {

Table MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g", TypeId::kInt64},
      {"a", TypeId::kFloat64},
  });
  TableBuilder builder(schema, 512);
  for (int64_t i = 0; i < n; ++i) {
    builder.AppendRow({Value::Int(rng.UniformInt(1, 5)),
                       Value::Float(rng.LogNormal(1.1, 0.6))});
  }
  return builder.Finish();
}

const char kSql[] = "SELECT AVG(a) AS m FROM d";

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Structural sanity for one JSONL line: braces and brackets balance
/// outside of string literals and the line is a single object.
void ExpectBalancedJson(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << line;
  }
  EXPECT_FALSE(in_string) << line;
  EXPECT_EQ(depth, 0) << line;
}

bool Contains(const std::string& line, const std::string& needle) {
  return line.find(needle) != std::string::npos;
}

/// Extracts the raw value token following `"key": ` (number, string, or
/// the opening of an array/object). Empty when the key is absent.
std::string RawValue(const std::string& line, const std::string& key) {
  std::string marker = "\"" + key + "\": ";
  size_t pos = line.find(marker);
  if (pos == std::string::npos) return "";
  pos += marker.size();
  size_t end = pos;
  if (line[pos] == '"') {
    end = pos + 1;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    return line.substr(pos + 1, end - pos - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(pos, end - pos);
}

class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::DisarmAll();
    path_ = std::string("querylog_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
    ASSERT_TRUE(obs::QueryLog::Global().Open(path_));
    GOLA_CHECK_OK(engine_.RegisterTable("d", MakeData(20'000, 99)));
  }
  void TearDown() override {
    fail::DisarmAll();
    engine_.sessions().Shutdown();
    obs::QueryLog::Global().Close();
    std::remove(path_.c_str());
  }

  /// Joins the dispatcher (so every Finish — and its wide event — has
  /// completed), then returns the emitted records.
  std::vector<std::string> DrainRecords() {
    engine_.sessions().Shutdown();
    return ReadLines(path_);
  }

  GolaOptions BaseOptions() {
    GolaOptions opts;
    opts.num_batches = 8;
    opts.bootstrap_replicates = 24;
    opts.seed = 4242;
    return opts;
  }

  Engine engine_;
  std::string path_;
};

TEST_F(QueryLogTest, SuccessRecordCarriesFullSchema) {
  SessionOptions options;
  options.gola = BaseOptions();
  options.label = "panel-1";
  auto session = engine_.SubmitOnline(kSql, std::move(options));
  GOLA_CHECK_OK(session.status());
  GOLA_CHECK_OK((*session)->Await().status());

  auto lines = DrainRecords();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& rec = lines[0];
  ExpectBalancedJson(rec);

  // Identity.
  EXPECT_EQ(RawValue(rec, "kind"), "query_wide_event");
  EXPECT_EQ(RawValue(rec, "session_id"), std::to_string((*session)->id()));
  EXPECT_EQ(RawValue(rec, "label"), "panel-1");
  EXPECT_EQ(RawValue(rec, "table"), "d");
  EXPECT_EQ(RawValue(rec, "sql"), kSql);
  // Outcome.
  EXPECT_EQ(RawValue(rec, "state"), "done");
  EXPECT_EQ(RawValue(rec, "degradation"), "none");
  EXPECT_EQ(RawValue(rec, "error"), "");
  // Options and volume.
  EXPECT_EQ(RawValue(rec, "num_batches"), "8");
  EXPECT_EQ(RawValue(rec, "bootstrap_replicates"), "24");
  EXPECT_EQ(RawValue(rec, "seed"), "4242");
  EXPECT_EQ(RawValue(rec, "batches_done"), "8");
  EXPECT_EQ(RawValue(rec, "total_batches"), "8");
  EXPECT_EQ(RawValue(rec, "updates_dropped"), "0");
  // Timing is populated and sane.
  EXPECT_GT(std::stod(RawValue(rec, "seconds_to_first_update")), 0);
  EXPECT_GE(std::stod(RawValue(rec, "seconds_to_done")),
            std::stod(RawValue(rec, "seconds_to_first_update")));
  // SLO crossings, cumulative stats, and events are present as structures.
  EXPECT_TRUE(Contains(rec, "\"slo\": ["));
  EXPECT_TRUE(Contains(rec, "\"target_rsd\": 0.05"));
  EXPECT_TRUE(Contains(rec, "\"stats\": {"));
  EXPECT_GT(std::stoll(RawValue(rec, "rows_in")), 0);
  EXPECT_TRUE(Contains(rec, "\"events\": ["));
  // Headline estimate with CI: AVG over LogNormal(1.1, 0.6) lands near 3.6.
  EXPECT_EQ(RawValue(rec, "has_estimate"), "true");
  double estimate = std::stod(RawValue(rec, "estimate"));
  EXPECT_GT(estimate, 0);
  EXPECT_LE(std::stod(RawValue(rec, "ci_lo")), estimate);
  EXPECT_GE(std::stod(RawValue(rec, "ci_hi")), estimate);
  EXPECT_GE(std::stod(RawValue(rec, "max_rsd")), 0);
}

TEST_F(QueryLogTest, FailedSessionRecordsError) {
  // Every morsel faults and retries are off: the first batch is fatal.
  GOLA_CHECK_OK(fail::Arm("exec.morsel", "always"));
  SessionOptions options;
  options.gola = BaseOptions();
  options.gola.max_morsel_retries = 0;
  auto session = engine_.SubmitOnline(kSql, std::move(options));
  GOLA_CHECK_OK(session.status());
  EXPECT_FALSE((*session)->Await().ok());
  fail::DisarmAll();

  auto lines = DrainRecords();
  ASSERT_EQ(lines.size(), 1u);
  ExpectBalancedJson(lines[0]);
  EXPECT_EQ(RawValue(lines[0], "state"), "failed");
  EXPECT_TRUE(Contains(RawValue(lines[0], "error"), "failpoint"));
  EXPECT_EQ(RawValue(lines[0], "has_estimate"), "false");
}

TEST_F(QueryLogTest, CancelledSessionRecordsEvent) {
  SessionOptions options;
  options.gola = BaseOptions();
  options.gola.num_batches = 200;  // long enough that Cancel lands mid-run
  auto session = engine_.SubmitOnline(kSql, std::move(options));
  GOLA_CHECK_OK(session.status());
  (*session)->Cancel();
  (void)(*session)->Await();
  ASSERT_EQ((*session)->state(), SessionState::kCancelled);

  auto lines = DrainRecords();
  ASSERT_EQ(lines.size(), 1u);
  ExpectBalancedJson(lines[0]);
  EXPECT_EQ(RawValue(lines[0], "state"), "cancelled");
  EXPECT_TRUE(Contains(lines[0], "\"name\": \"cancel_requested\""));
}

TEST_F(QueryLogTest, DegradedSessionRecordsRung) {
  // An impossible 1ms deadline over plenty of batches: the degradation
  // ladder engages, and both the final rung and the moment each rung was
  // climbed land in the record.
  SessionOptions options;
  options.gola = BaseOptions();
  options.gola.num_batches = 40;
  options.gola.deadline_ms = 1;
  auto session = engine_.SubmitOnline(kSql, std::move(options));
  GOLA_CHECK_OK(session.status());
  GOLA_CHECK_OK((*session)->Await().status());
  ASSERT_NE((*session)->degradation(), Degradation::kNone);

  auto lines = DrainRecords();
  ASSERT_EQ(lines.size(), 1u);
  ExpectBalancedJson(lines[0]);
  EXPECT_EQ(RawValue(lines[0], "state"), "done");
  EXPECT_NE(RawValue(lines[0], "degradation"), "none");
  EXPECT_EQ(RawValue(lines[0], "deadline_ms"), "1");
  EXPECT_TRUE(Contains(lines[0], "\"name\": \"degrade:"));
}

TEST_F(QueryLogTest, OneRecordPerConcurrentSession) {
  std::vector<SessionPtr> fleet;
  for (int i = 0; i < 3; ++i) {
    SessionOptions options;
    options.gola = BaseOptions();
    auto session = engine_.SubmitOnline(kSql, std::move(options));
    GOLA_CHECK_OK(session.status());
    fleet.push_back(*session);
  }
  for (const auto& session : fleet) {
    GOLA_CHECK_OK(session->Await().status());
  }

  auto lines = DrainRecords();
  ASSERT_EQ(lines.size(), 3u);
  std::vector<std::string> seen;
  for (const auto& rec : lines) {
    ExpectBalancedJson(rec);
    EXPECT_EQ(RawValue(rec, "state"), "done");
    std::string id = RawValue(rec, "session_id");
    for (const auto& other : seen) EXPECT_NE(other, id);
    seen.push_back(id);
  }
}

}  // namespace
}  // namespace server
}  // namespace gola

// Convergence-recorder tests: the JSONL trajectory written via
// GolaOptions::convergence_path is parsed back and checked for one record
// per batch, monotone fraction_processed, and well-formed CI fields; plus
// the materialize_results=false satellite (intermediate updates skip the
// result-table copy, the final one does not, and recording still works).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "gola/gola.h"

namespace gola {
namespace {

Table MakeSessions(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"session_id", TypeId::kInt64},
      {"ad_id", TypeId::kInt64},
      {"buffer_time", TypeId::kFloat64},
      {"play_time", TypeId::kFloat64},
  });
  TableBuilder builder(schema, /*chunk_size=*/256);
  for (int64_t i = 0; i < n; ++i) {
    double buffer = rng.Exponential(30.0);
    double play = std::max(0.0, 600.0 - 4.0 * buffer + rng.Normal(0, 50));
    builder.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(1, 8)),
                       Value::Float(buffer), Value::Float(play)});
  }
  return builder.Finish();
}

constexpr const char* kSbi =
    "SELECT AVG(play_time) FROM sessions "
    "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";

constexpr const char* kGrouped =
    "SELECT ad_id, AVG(play_time) AS apt FROM sessions GROUP BY ad_id "
    "ORDER BY ad_id";

/// Extracts `"key": <number>` from a JSONL line; fails the test when the
/// key is missing or non-numeric (null is reported via `found=false`).
bool NumField(const std::string& line, const std::string& key, double* out) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    ADD_FAILURE() << "missing key " << key << " in: " << line;
    return false;
  }
  pos += needle.size();
  if (line.compare(pos, 4, "null") == 0) return false;
  char* end = nullptr;
  *out = std::strtod(line.c_str() + pos, &end);
  if (end == line.c_str() + pos) {
    ADD_FAILURE() << "non-numeric " << key << " in: " << line;
    return false;
  }
  return true;
}

std::vector<std::string> RunAndReadJsonl(Engine* engine, const char* sql,
                                         GolaOptions opts,
                                         const std::string& path) {
  std::remove(path.c_str());
  opts.convergence_path = path;
  auto online = engine->ExecuteOnline(sql, opts);
  GOLA_CHECK_OK(online.status());
  GOLA_CHECK_OK((*online)->Run().status());

  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ConvergenceTest, TrajectoryIsMonotoneAndWellFormed) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("sessions", MakeSessions(4000, 7)));
  GolaOptions opts;
  opts.num_batches = 10;
  std::string path = ::testing::TempDir() + "convergence_sbi.jsonl";
  auto lines = RunAndReadJsonl(&engine, kSbi, opts, path);
  ASSERT_EQ(lines.size(), 10u) << "one JSONL record per OnlineUpdate";

  double prev_fraction = 0, prev_elapsed = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    double batch = 0, fraction = 0, elapsed = 0, max_rsd = 0, uncertain = 0;
    ASSERT_TRUE(NumField(line, "batch_index", &batch));
    ASSERT_TRUE(NumField(line, "fraction_processed", &fraction));
    ASSERT_TRUE(NumField(line, "elapsed_seconds", &elapsed));
    ASSERT_TRUE(NumField(line, "max_rsd", &max_rsd));
    ASSERT_TRUE(NumField(line, "uncertain_tuples", &uncertain));
    EXPECT_EQ(static_cast<int>(batch), static_cast<int>(i) + 1);

    // Monotone progress.
    EXPECT_GT(fraction, prev_fraction) << line;
    EXPECT_GE(elapsed, prev_elapsed) << line;
    prev_fraction = fraction;
    prev_elapsed = elapsed;
    EXPECT_GE(max_rsd, 0) << line;
    EXPECT_GE(uncertain, 0) << line;

    // Well-formed CI around the headline estimate.
    double estimate = 0, lo = 0, hi = 0, rsd = 0;
    ASSERT_TRUE(NumField(line, "estimate", &estimate)) << line;
    ASSERT_TRUE(NumField(line, "ci_lo", &lo));
    ASSERT_TRUE(NumField(line, "ci_hi", &hi));
    ASSERT_TRUE(NumField(line, "rsd", &rsd));
    EXPECT_LE(lo, hi) << line;
    EXPECT_GE(estimate, lo - 1e-9) << line;
    EXPECT_LE(estimate, hi + 1e-9) << line;
    EXPECT_GE(rsd, 0) << line;

    // Phase breakdown present and non-negative.
    double delta = 0, emit = 0;
    ASSERT_TRUE(NumField(line, "delta_exec", &delta));
    ASSERT_TRUE(NumField(line, "emit", &emit));
    EXPECT_GE(delta, 0);
    EXPECT_GE(emit, 0);
  }
  EXPECT_NEAR(prev_fraction, 1.0, 1e-9);
  std::remove(path.c_str());
}

TEST(ConvergenceTest, SkippedMaterializationStillRecordsEstimates) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("sessions", MakeSessions(4000, 9)));
  GolaOptions opts;
  opts.num_batches = 6;
  opts.materialize_results = false;
  std::string path = ::testing::TempDir() + "convergence_nomat.jsonl";

  std::remove(path.c_str());
  opts.convergence_path = path;
  auto online = engine.ExecuteOnline(kGrouped, opts);
  GOLA_CHECK_OK(online.status());
  int intermediate_rows = 0;
  auto last = (*online)->Run([&](const OnlineUpdate& update) {
    if (update.batch_index < update.total_batches) {
      intermediate_rows += static_cast<int>(update.result.num_rows());
    }
    return true;
  });
  GOLA_CHECK_OK(last.status());

  // Intermediate updates skipped the result copy; the final one did not.
  EXPECT_EQ(intermediate_rows, 0);
  EXPECT_GT(last->result.num_rows(), 0);

  // The recorder still saw estimates every batch (it reads the root
  // emission, not the materialized update).
  std::ifstream in(path);
  std::string line;
  int records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++records;
    double estimate = 0, rows = 0;
    EXPECT_TRUE(NumField(line, "estimate", &estimate)) << line;
    ASSERT_TRUE(NumField(line, "result_rows", &rows));
    EXPECT_GT(rows, 0) << line;
  }
  EXPECT_EQ(records, 6);
  std::remove(path.c_str());
}

TEST(ConvergenceTest, FinalAnswerUnchangedByMaterializeToggle) {
  // materialize_results must be a pure reporting knob: the drained answer
  // is bit-identical with it on and off.
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("sessions", MakeSessions(3000, 21)));
  GolaOptions opts;
  opts.num_batches = 8;

  auto run = [&](bool materialize) {
    GolaOptions o = opts;
    o.materialize_results = materialize;
    auto online = engine.ExecuteOnline(kGrouped, o);
    GOLA_CHECK_OK(online.status());
    auto last = (*online)->Run();
    GOLA_CHECK_OK(last.status());
    return last->result;
  };
  Table with = run(true);
  Table without = run(false);
  ASSERT_EQ(with.num_rows(), without.num_rows());
  ASSERT_EQ(with.schema()->num_fields(), without.schema()->num_fields());
  for (int64_t r = 0; r < with.num_rows(); ++r) {
    for (size_t c = 0; c < with.schema()->num_fields(); ++c) {
      EXPECT_EQ(with.At(r, static_cast<int>(c)).ToString(),
                without.At(r, static_cast<int>(c)).ToString())
          << "row " << r << " col " << c;
    }
  }
}

}  // namespace
}  // namespace gola

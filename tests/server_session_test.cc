// Concurrent-session layer tests: the tentpole claim is that N queries
// multiplexed over the dispatcher's shared mini-batch sweep — with or
// without scan sharing — produce answers BIT-IDENTICAL to the same query
// run solo through ExecuteOnline. Plus admission control, cancellation,
// attach-in-flight, per-session checkpoints, and catalog replacement under
// live sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gola/gola.h"
#include "server/dispatcher.h"

namespace gola {
namespace server {
namespace {

Table MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g", TypeId::kInt64},
      {"a", TypeId::kFloat64},
      {"b", TypeId::kFloat64},
  });
  TableBuilder builder(schema, 512);
  for (int64_t i = 0; i < n; ++i) {
    builder.AppendRow({Value::Int(rng.UniformInt(1, 6)),
                       Value::Float(rng.LogNormal(1.2, 0.5)),
                       Value::Float(rng.Normal(50, 15))});
  }
  return builder.Finish();
}

/// Structurally different same-table queries — the "dashboard fleet".
const char* kFleet[] = {
    "SELECT AVG(a) AS m, COUNT(*) AS n FROM d",
    "SELECT g, SUM(a) AS s FROM d d "
    "WHERE b > (SELECT AVG(b) FROM d) GROUP BY g ORDER BY g",
    "SELECT MAX(b) AS mx, MIN(a) AS mn FROM d WHERE a > 1.0",
};
constexpr size_t kFleetSize = sizeof(kFleet) / sizeof(kFleet[0]);

GolaOptions TestOptions() {
  GolaOptions opts;
  opts.num_batches = 8;
  opts.bootstrap_replicates = 24;
  opts.seed = 991;
  return opts;
}

/// Solo reference: the same SQL through the single-query path.
OnlineUpdate Solo(Engine& engine, const std::string& sql,
                  const GolaOptions& opts) {
  auto exec = engine.ExecuteOnline(sql, opts);
  GOLA_CHECK_OK(exec.status());
  auto final_update = (*exec)->Run();
  GOLA_CHECK_OK(final_update.status());
  return *final_update;
}

/// Cell-exact table equality (schema names, row count, every Value).
void ExpectBitIdentical(const Table& got, const Table& want,
                        const std::string& context) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << context;
  ASSERT_EQ(got.schema()->num_fields(), want.schema()->num_fields()) << context;
  for (size_t c = 0; c < want.schema()->num_fields(); ++c) {
    EXPECT_EQ(got.schema()->field(c).name, want.schema()->field(c).name)
        << context;
  }
  for (int64_t r = 0; r < want.num_rows(); ++r) {
    for (size_t c = 0; c < want.schema()->num_fields(); ++c) {
      ASSERT_TRUE(got.At(r, static_cast<int>(c)) ==
                  want.At(r, static_cast<int>(c)))
          << context << " row " << r << " col " << want.schema()->field(c).name;
    }
  }
}

/// Submits `m` fleet sessions (cycling kFleet), awaits them, and checks
/// every final answer — and its max_rsd — against the solo run.
void RunFleetAndCompare(int m, bool share_scan) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(12'000, 5)));
  const GolaOptions opts = TestOptions();

  std::vector<OnlineUpdate> solo;
  for (size_t q = 0; q < kFleetSize; ++q) {
    solo.push_back(Solo(engine, kFleet[q], opts));
  }

  std::vector<SessionPtr> fleet;
  for (int i = 0; i < m; ++i) {
    SessionOptions options;
    options.gola = opts;
    options.share_scan = share_scan;
    auto session =
        engine.SubmitOnline(kFleet[static_cast<size_t>(i) % kFleetSize],
                            std::move(options));
    GOLA_CHECK_OK(session.status());
    fleet.push_back(*session);
  }
  for (int i = 0; i < m; ++i) {
    auto final_update = fleet[static_cast<size_t>(i)]->Await();
    GOLA_CHECK_OK(final_update.status());
    const OnlineUpdate& want = solo[static_cast<size_t>(i) % kFleetSize];
    EXPECT_EQ(fleet[static_cast<size_t>(i)]->state(), SessionState::kDone);
    EXPECT_EQ(fleet[static_cast<size_t>(i)]->scan_shared(), share_scan);
    EXPECT_EQ(final_update->batch_index, want.batch_index);
    EXPECT_EQ(final_update->max_rsd, want.max_rsd);  // exact, not approximate
    EXPECT_EQ(final_update->recomputes_so_far, want.recomputes_so_far);
    ExpectBitIdentical(final_update->result, want.result,
                       kFleet[static_cast<size_t>(i) % kFleetSize]);
  }
  if (share_scan) {
    // One partitioner build, m-1 attaches.
    EXPECT_EQ(engine.sessions().scan_stats().misses, 1);
    EXPECT_EQ(engine.sessions().scan_stats().hits, m - 1);
  } else {
    EXPECT_EQ(engine.sessions().scan_stats().hits, 0);
  }
}

TEST(ServerSessionTest, SharedScanFleetBitIdenticalToSolo) {
  RunFleetAndCompare(/*m=*/6, /*share_scan=*/true);
}

TEST(ServerSessionTest, UnsharedFleetBitIdenticalToSolo) {
  RunFleetAndCompare(/*m=*/6, /*share_scan=*/false);
}

// M client threads submit and consume concurrently through the cursor API —
// the server-side reality of satellite tests: multi-threaded ExecuteOnline
// via sessions, updates streamed per client, finals bit-identical to solo.
TEST(ServerSessionTest, ConcurrentClientThreadsBitIdentical) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(12'000, 9)));
  const GolaOptions opts = TestOptions();

  std::vector<OnlineUpdate> solo;
  for (size_t q = 0; q < kFleetSize; ++q) {
    solo.push_back(Solo(engine, kFleet[q], opts));
  }

  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      SessionOptions options;
      options.gola = opts;
      options.share_scan = (i % 2 == 0);  // mixed modes in the same sweep
      auto session =
          engine.SubmitOnline(kFleet[static_cast<size_t>(i) % kFleetSize],
                              std::move(options));
      if (!session.ok()) {
        ++failures;
        return;
      }
      // Drain the cursor: batch indexes must be strictly increasing (the
      // drop-oldest policy may skip, never reorder or repeat).
      int last_batch = 0;
      OnlineUpdate update;
      while ((*session)->Next(&update, std::chrono::milliseconds(2000))) {
        if (update.batch_index <= last_batch) ++failures;
        last_batch = update.batch_index;
      }
      auto final_update = (*session)->Await();
      if (!final_update.ok() ||
          final_update->max_rsd !=
              solo[static_cast<size_t>(i) % kFleetSize].max_rsd) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerSessionTest, AttachInFlightSharesScanAndStaysExact) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(20'000, 3)));
  GolaOptions opts = TestOptions();
  opts.num_batches = 40;

  const OnlineUpdate solo = Solo(engine, kFleet[1], opts);

  SessionOptions first;
  first.gola = opts;
  auto a = engine.SubmitOnline(kFleet[0], std::move(first));
  GOLA_CHECK_OK(a.status());
  // Wait until A is actually streaming, so B attaches to an in-flight scan.
  OnlineUpdate u;
  ASSERT_TRUE((*a)->Next(&u, std::chrono::milliseconds(5000)));

  SessionOptions second;
  second.gola = opts;
  auto b = engine.SubmitOnline(kFleet[1], std::move(second));
  GOLA_CHECK_OK(b.status());
  auto b_final = (*b)->Await();
  GOLA_CHECK_OK(b_final.status());
  EXPECT_TRUE((*b)->scan_shared());
  // B starts from its own batch 0 cursor — attach-in-flight shares the
  // partitioner, not the batch position, so the answer is the solo answer.
  EXPECT_EQ(b_final->max_rsd, solo.max_rsd);
  ExpectBitIdentical(b_final->result, solo.result, "attach-in-flight");
  GOLA_CHECK_OK((*a)->Await().status());
}

TEST(ServerSessionTest, AdmissionControl) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(1000, 1)));

  DispatcherOptions limits;
  limits.max_queued_sessions = 0;  // reject everything at the door
  Dispatcher dispatcher(&engine.catalog(), limits);
  auto rejected = dispatcher.Submit(kFleet[0], {});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  // Synchronous errors for queries that could never stream.
  Dispatcher open(&engine.catalog(), {});
  EXPECT_FALSE(open.Submit("SELECT nope FROM missing", {}).ok());
  EXPECT_FALSE(open.Submit("SELECT g FROM d", {}).ok());  // no aggregate

  open.Shutdown();
  auto after = open.Submit(kFleet[0], {});
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

TEST(ServerSessionTest, CancelTerminatesSession) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(50'000, 2)));
  GolaOptions opts = TestOptions();
  opts.num_batches = 200;  // long enough to still be live when cancelled

  auto session = engine.SubmitOnline(kFleet[0], [&] {
    SessionOptions o;
    o.gola = opts;
    return o;
  }());
  GOLA_CHECK_OK(session.status());
  (*session)->Cancel();
  auto final_update = (*session)->Await();
  EXPECT_FALSE(final_update.ok());
  EXPECT_EQ((*session)->state(), SessionState::kCancelled);
  // Idempotent on a terminal session.
  (*session)->Cancel();
  EXPECT_EQ((*session)->state(), SessionState::kCancelled);
}

TEST(ServerSessionTest, PerSessionCheckpointRoundTrips) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(30'000, 4)));
  GolaOptions opts = TestOptions();
  opts.num_batches = 120;

  const OnlineUpdate solo = Solo(engine, kFleet[1], opts);

  SessionOptions options;
  options.gola = opts;
  auto session = engine.SubmitOnline(kFleet[1], std::move(options));
  GOLA_CHECK_OK(session.status());
  OnlineUpdate u;
  ASSERT_TRUE((*session)->Next(&u, std::chrono::milliseconds(5000)));

  const std::string path = "server_session_test.ckpt";
  Status st = (*session)->Checkpoint(path);
  // The dispatcher may have drained the session between the cursor read and
  // the checkpoint; only a live session can snapshot.
  if (st.ok()) {
    // Resuming from the per-session checkpoint completes to the same
    // bit-identical answer as the uninterrupted solo run.
    auto resumed = engine.ResumeOnline(kFleet[1], path, opts);
    GOLA_CHECK_OK(resumed.status());
    auto resumed_final = (*resumed)->Run();
    GOLA_CHECK_OK(resumed_final.status());
    EXPECT_EQ(resumed_final->max_rsd, solo.max_rsd);
    ExpectBitIdentical(resumed_final->result, solo.result, "resume");
    std::remove(path.c_str());
  } else {
    EXPECT_GE((*session)->state(), SessionState::kDone);
  }
  GOLA_CHECK_OK((*session)->Await().status());
}

// Satellite 1: replacing a table while sessions stream it. Running sessions
// keep their snapshot; submissions after the swap see the new data.
TEST(ServerSessionTest, RegisterTableReplaceWhileRunning) {
  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(20'000, 7)));
  GolaOptions opts = TestOptions();
  opts.num_batches = 60;

  const OnlineUpdate solo_v1 = Solo(engine, kFleet[0], opts);

  SessionOptions options;
  options.gola = opts;
  auto session = engine.SubmitOnline(kFleet[0], std::move(options));
  GOLA_CHECK_OK(session.status());
  OnlineUpdate u;
  ASSERT_TRUE((*session)->Next(&u, std::chrono::milliseconds(5000)));

  // Swap the table out from under the live session.
  GOLA_CHECK_OK(engine.RegisterTable("d", MakeData(5'000, 1234)));

  auto final_update = (*session)->Await();
  GOLA_CHECK_OK(final_update.status());
  ExpectBitIdentical(final_update->result, solo_v1.result,
                     "snapshot under replacement");

  // A fresh session (and a fresh solo run) both see the replacement.
  const OnlineUpdate solo_v2 = Solo(engine, kFleet[0], opts);
  SessionOptions fresh;
  fresh.gola = opts;
  auto session2 = engine.SubmitOnline(kFleet[0], std::move(fresh));
  GOLA_CHECK_OK(session2.status());
  auto final2 = (*session2)->Await();
  GOLA_CHECK_OK(final2.status());
  ExpectBitIdentical(final2->result, solo_v2.result, "post-replacement");
  EXPECT_GT(engine.catalog().version(), 1u);
}

}  // namespace
}  // namespace server
}  // namespace gola

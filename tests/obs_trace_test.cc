// Trace subsystem tests: Chrome trace-event JSON well-formedness (parsed
// back with a real, if minimal, JSON parser), and the acceptance check that
// an online query's timeline nests batch → block → phase → morsel (≥3
// levels by time containment on one thread track).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gola/gola.h"
#include "obs/trace.h"
#include "workload/conviva_gen.h"
#include "workload/queries.h"

namespace gola {
namespace obs {
namespace {

// ----------------------------------------------- minimal JSON parser ------
// Enough of RFC 8259 to round-trip the tracer's output; parse failures
// surface as ADD_FAILURE + null values.

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonPtr> items;
  std::map<std::string, JsonPtr> fields;

  const JsonValue* Get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : it->second.get();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonPtr Parse() {
    JsonPtr v = ParseValue();
    SkipWs();
    if (pos_ != s_.size()) ok_ = false;
    return ok_ ? v : nullptr;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }

  JsonPtr ParseValue() {
    SkipWs();
    auto v = std::make_shared<JsonValue>();
    if (pos_ >= s_.size()) {
      ok_ = false;
      return v;
    }
    char c = s_[pos_];
    if (c == '{') {
      v->kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return v;
      }
      while (ok_) {
        SkipWs();
        std::string key = ParseString();
        Consume(':');
        v->fields[key] = ParseValue();
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        Consume('}');
        break;
      }
    } else if (c == '[') {
      v->kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return v;
      }
      while (ok_) {
        v->items.push_back(ParseValue());
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        Consume(']');
        break;
      }
    } else if (c == '"') {
      v->kind = JsonValue::Kind::kString;
      v->str = ParseString();
    } else if (c == 't' || c == 'f') {
      v->kind = JsonValue::Kind::kBool;
      const char* lit = c == 't' ? "true" : "false";
      v->b = c == 't';
      for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
        if (pos_ >= s_.size() || s_[pos_] != *p) {
          ok_ = false;
          break;
        }
      }
    } else if (c == 'n') {
      for (const char* p = "null"; *p != '\0'; ++p, ++pos_) {
        if (pos_ >= s_.size() || s_[pos_] != *p) {
          ok_ = false;
          break;
        }
      }
    } else {
      v->kind = JsonValue::Kind::kNumber;
      size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
              s_[pos_] == 'e' || s_[pos_] == 'E')) {
        ++pos_;
      }
      if (pos_ == start) {
        ok_ = false;
      } else {
        v->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
      }
    }
    return v;
  }

  std::string ParseString() {
    std::string out;
    if (!Consume('"')) return out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'u':
            pos_ += 4;  // tracer never emits non-ASCII; skip the escape
            out.push_back('?');
            break;
          default: out.push_back(e);
        }
      } else {
        out.push_back(c);
      }
    }
    Consume('"');
    return out;
  }

  const std::string& s_;
  size_t pos_ = 0;
  bool ok_ = true;
};

struct ParsedEvent {
  std::string name;
  double ts = 0;
  double dur = 0;
  double tid = 0;
};

std::vector<ParsedEvent> ParseTrace(const std::string& json) {
  std::vector<ParsedEvent> out;
  JsonParser parser(json);
  JsonPtr root = parser.Parse();
  if (root == nullptr || root->kind != JsonValue::Kind::kObject) {
    ADD_FAILURE() << "trace JSON failed to parse";
    return out;
  }
  const JsonValue* events = root->Get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    ADD_FAILURE() << "no traceEvents array";
    return out;
  }
  for (const JsonPtr& e : events->items) {
    EXPECT_EQ(e->kind, JsonValue::Kind::kObject);
    const JsonValue* name = e->Get("name");
    const JsonValue* ph = e->Get("ph");
    const JsonValue* ts = e->Get("ts");
    const JsonValue* dur = e->Get("dur");
    const JsonValue* tid = e->Get("tid");
    if (name == nullptr || ph == nullptr || ts == nullptr || dur == nullptr ||
        tid == nullptr) {
      ADD_FAILURE() << "event missing a required field";
      continue;
    }
    EXPECT_EQ(ph->str, "X");  // complete events only
    out.push_back({name->str, ts->num, dur->num, tid->num});
  }
  return out;
}

/// Nesting depth of each event on its thread track: the number of other
/// events that strictly contain it in time — how Perfetto infers the stack.
int MaxNestingLevels(const std::vector<ParsedEvent>& events) {
  int max_levels = 1;
  for (size_t i = 0; i < events.size(); ++i) {
    int containers = 0;
    for (size_t j = 0; j < events.size(); ++j) {
      if (i == j || events[i].tid != events[j].tid) continue;
      if (events[j].ts <= events[i].ts &&
          events[j].ts + events[j].dur >= events[i].ts + events[i].dur &&
          events[j].dur > events[i].dur) {
        ++containers;
      }
    }
    max_levels = std::max(max_levels, containers + 1);
  }
  return max_levels;
}

TEST(TracerTest, RecordsAndExportsWellFormedJson) {
  Tracer tracer;
  tracer.Enable();
  int64_t t0 = tracer.NowNs();
  tracer.Record("outer", t0, 10000, "arg \"quoted\"", 3);
  tracer.Record("inner", t0 + 1000, 2000);
  tracer.Disable();
  EXPECT_EQ(tracer.num_events(), 2u);

  std::vector<ParsedEvent> events = ParseTrace(tracer.ToJson());
  ASSERT_EQ(events.size(), 2u);
  bool saw_outer = false, saw_inner = false;
  for (const auto& e : events) {
    if (e.name == "outer") {
      saw_outer = true;
      EXPECT_NEAR(e.dur, 10.0, 1e-9);  // ns → µs
    }
    if (e.name == "inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);

  tracer.Clear();
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  {
    // Against the global tracer, which is disabled unless a trace_path test
    // ran first — guard on its state instead of assuming.
    bool was_enabled = Tracer::Global().enabled();
    if (!was_enabled) {
      size_t before = Tracer::Global().num_events();
      TraceSpan span("noop");
      (void)span;
      EXPECT_EQ(Tracer::Global().num_events(), before);
    }
  }
}

TEST(TraceEndToEndTest, OnlineQueryTimelineNestsThreeLevels) {
  // Serial drain (pool = nullptr) puts batch → block → phase → morsel on a
  // single thread track; the acceptance criterion is ≥3 nested span levels.
  std::string path = ::testing::TempDir() + "gola_trace_test.json";
  std::remove(path.c_str());

  Engine engine;
  ConvivaGenOptions conviva;
  conviva.num_rows = 4000;
  conviva.num_ads = 12;
  conviva.num_contents = 100;
  GOLA_CHECK_OK(engine.RegisterTable("conviva", GenerateConviva(conviva)));

  GolaOptions opts;
  opts.num_batches = 5;
  opts.bootstrap_replicates = 20;
  opts.trace_path = path;
  auto online = engine.ExecuteOnline(SbiQuery(), opts);
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  auto last = (*online)->Run();
  ASSERT_TRUE(last.ok()) << last.status().ToString();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "trace file not written: " << path;
  std::string json;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  std::vector<ParsedEvent> events = ParseTrace(json);
  ASSERT_FALSE(events.empty());

  std::map<std::string, int> by_name;
  for (const auto& e : events) ++by_name[e.name];
  EXPECT_EQ(by_name["batch"], 5);
  EXPECT_GE(by_name["block"], 5);   // ≥1 block per batch
  EXPECT_GE(by_name["morsel"], 5);  // ≥1 morsel per batch
  EXPECT_GE(by_name["delta_exec"], 5);
  EXPECT_GE(by_name["emit"], 5);
  EXPECT_GE(by_name["materialize"], 5);

  EXPECT_GE(MaxNestingLevels(events), 3);

  Tracer::Global().Disable();
  Tracer::Global().Clear();
}

}  // namespace
}  // namespace obs
}  // namespace gola

// Deterministic/uncertain classification primitives (paper §3.2): the
// tri-state comparison tables against ranges, range-vs-range comparison and
// conjunction combination, exercised exhaustively over all operators.
#include "gola/uncertain.h"

#include <gtest/gtest.h>

namespace gola {
namespace {

TEST(ClassifyCmpRangeTest, LessThan) {
  VariationRange r{10, 20};
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLt, 5, r), TriState::kTrue);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLt, 25, r), TriState::kFalse);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLt, 15, r), TriState::kUncertain);
  // Boundaries: lhs == lo is uncertain for <(lhs could equal the final value).
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLt, 10, r), TriState::kUncertain);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLt, 20, r), TriState::kFalse);
}

TEST(ClassifyCmpRangeTest, GreaterThan) {
  VariationRange r{10, 20};
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kGt, 25, r), TriState::kTrue);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kGt, 5, r), TriState::kFalse);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kGt, 10, r), TriState::kFalse);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kGt, 20, r), TriState::kUncertain);
}

TEST(ClassifyCmpRangeTest, LeGe) {
  VariationRange r{10, 20};
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLe, 10, r), TriState::kTrue);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLe, 20, r), TriState::kUncertain);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kLe, 21, r), TriState::kFalse);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kGe, 20, r), TriState::kTrue);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kGe, 9, r), TriState::kFalse);
}

TEST(ClassifyCmpRangeTest, EqNe) {
  VariationRange r{10, 20};
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kEq, 5, r), TriState::kFalse);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kEq, 15, r), TriState::kUncertain);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kNe, 5, r), TriState::kTrue);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kNe, 15, r), TriState::kUncertain);
  VariationRange point{7, 7};
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kEq, 7, point), TriState::kTrue);
  EXPECT_EQ(ClassifyCmpRange(CmpOp::kNe, 7, point), TriState::kFalse);
}

TEST(ClassifyCmpRangeTest, DeterministicDecisionsAgreeWithAnyPointInRange) {
  // Property: kTrue/kFalse must agree with the concrete comparison against
  // every value in the range (sampled).
  VariationRange r{-3.0, 4.5};
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kEq,
                   CmpOp::kNe}) {
    for (double lhs = -6; lhs <= 8; lhs += 0.25) {
      TriState t = ClassifyCmpRange(op, lhs, r);
      if (t == TriState::kUncertain) continue;
      for (double v = r.lo; v <= r.hi; v += 0.15) {
        bool concrete = false;
        switch (op) {
          case CmpOp::kLt: concrete = lhs < v; break;
          case CmpOp::kLe: concrete = lhs <= v; break;
          case CmpOp::kGt: concrete = lhs > v; break;
          case CmpOp::kGe: concrete = lhs >= v; break;
          case CmpOp::kEq: concrete = lhs == v; break;
          case CmpOp::kNe: concrete = lhs != v; break;
        }
        EXPECT_EQ(concrete, t == TriState::kTrue)
            << "op " << CmpOpSymbol(op) << " lhs " << lhs << " v " << v;
      }
    }
  }
}

TEST(ClassifyRangeRangeTest, SeparatedRangesDecide) {
  VariationRange lo{0, 5};
  VariationRange hi{10, 15};
  EXPECT_EQ(ClassifyRangeRange(CmpOp::kLt, lo, hi), TriState::kTrue);
  EXPECT_EQ(ClassifyRangeRange(CmpOp::kGt, lo, hi), TriState::kFalse);
  EXPECT_EQ(ClassifyRangeRange(CmpOp::kEq, lo, hi), TriState::kFalse);
  EXPECT_EQ(ClassifyRangeRange(CmpOp::kNe, lo, hi), TriState::kTrue);
}

TEST(ClassifyRangeRangeTest, OverlappingRangesUncertain) {
  VariationRange a{0, 10};
  VariationRange b{5, 15};
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kEq}) {
    EXPECT_EQ(ClassifyRangeRange(op, a, b), TriState::kUncertain);
  }
}

TEST(CombineConjunctsTest, TruthTable) {
  using T = TriState;
  EXPECT_EQ(CombineConjuncts(T::kTrue, T::kTrue), T::kTrue);
  EXPECT_EQ(CombineConjuncts(T::kTrue, T::kFalse), T::kFalse);
  EXPECT_EQ(CombineConjuncts(T::kUncertain, T::kFalse), T::kFalse);
  EXPECT_EQ(CombineConjuncts(T::kTrue, T::kUncertain), T::kUncertain);
  EXPECT_EQ(CombineConjuncts(T::kUncertain, T::kUncertain), T::kUncertain);
}

TEST(ReplicateVotesTest, Classification) {
  std::vector<uint8_t> all_true(10, 1);
  std::vector<uint8_t> all_false(10, 0);
  std::vector<uint8_t> mixed = {1, 1, 0, 1, 1, 1, 1, 1, 1, 1};
  std::vector<uint8_t> valid;
  EXPECT_EQ(ClassifyReplicateVotes(true, all_true, valid), TriState::kTrue);
  EXPECT_EQ(ClassifyReplicateVotes(false, all_false, valid), TriState::kFalse);
  EXPECT_EQ(ClassifyReplicateVotes(true, mixed, valid), TriState::kUncertain);
  // Main vote disagreeing with unanimous replicates → uncertain.
  EXPECT_EQ(ClassifyReplicateVotes(false, all_true, valid), TriState::kUncertain);
}

}  // namespace
}  // namespace gola

// TimeSeriesStore unit tests: ring compaction (log-time downsampling) made
// deterministic via AppendAt, bounded memory under unbounded appends,
// retired-series eviction, filtering/JSON shape, pull-based sampling, and
// concurrent writers + snapshotters (the TSan CI job runs this).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.h"

namespace gola {
namespace obs {
namespace {

TimeSeriesOptions SmallRing(int capacity) {
  TimeSeriesOptions options;
  options.ring_capacity = capacity;
  options.sample_period_ms = 5;
  return options;
}

TEST(TimeSeriesTest, AppendAndSnapshot) {
  TimeSeriesStore store(SmallRing(16));
  MetricLabels labels;
  labels.session_id = "1";
  labels.table = "conviva";
  auto id = store.Register("gola_query_max_rsd", labels);
  ASSERT_NE(id, TimeSeriesStore::kInvalidSeries);
  store.AppendAt(id, 100, 0.5);
  store.AppendAt(id, 200, 0.25);

  auto snaps = store.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "gola_query_max_rsd");
  EXPECT_EQ(snaps[0].labels.session_id, "1");
  EXPECT_FALSE(snaps[0].retired);
  ASSERT_EQ(snaps[0].samples.size(), 2u);
  EXPECT_EQ(snaps[0].samples[0].t_ms, 100);
  EXPECT_DOUBLE_EQ(snaps[0].samples[1].value, 0.25);
  EXPECT_EQ(store.LatestSampleMs(), 200);
}

TEST(TimeSeriesTest, CompactionKeepsNewestHalfExact) {
  const int kCap = 16;
  TimeSeriesStore store(SmallRing(kCap));
  auto id = store.Register("s", {});
  // Fill to exactly capacity: the 16th append triggers one compaction.
  for (int i = 0; i < kCap; ++i) {
    store.AppendAt(id, 1000 + i * 10, static_cast<double>(i));
  }
  auto snaps = store.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const auto& s = snaps[0].samples;
  // Oldest half (8 weight-1 samples) pair-merged to 4 weight-2 samples;
  // newest half kept verbatim.
  ASSERT_EQ(s.size(), 12u);
  // First merged sample averages samples 0 and 1: t=(1000+1010)/2, v=0.5.
  EXPECT_EQ(s[0].t_ms, 1005);
  EXPECT_DOUBLE_EQ(s[0].value, 0.5);
  EXPECT_EQ(s[0].weight, 2);
  EXPECT_DOUBLE_EQ(s[3].value, 6.5);  // avg of values 6 and 7
  // Newest 8 samples are exact.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(s[4 + static_cast<size_t>(i)].t_ms, 1000 + (8 + i) * 10);
    EXPECT_DOUBLE_EQ(s[4 + static_cast<size_t>(i)].value, 8.0 + i);
    EXPECT_EQ(s[4 + static_cast<size_t>(i)].weight, 1);
  }
  // Timestamps stay sorted through any number of compactions.
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s[i - 1].t_ms, s[i].t_ms);
  }
}

TEST(TimeSeriesTest, UnboundedAppendsStayBounded) {
  const int kCap = 32;
  TimeSeriesStore store(SmallRing(kCap));
  auto id = store.Register("s", {});
  for (int i = 0; i < 100000; ++i) {
    store.AppendAt(id, i, static_cast<double>(i));
  }
  auto snaps = store.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const auto& s = snaps[0].samples;
  EXPECT_LT(s.size(), static_cast<size_t>(kCap));
  ASSERT_GE(s.size(), static_cast<size_t>(kCap) / 2);
  // The whole run is covered: weights sum to the exact append count (no
  // history was dropped, only coarsened)…
  int64_t total_weight = 0;
  for (const auto& sample : s) total_weight += sample.weight;
  EXPECT_EQ(total_weight, 100000);
  // …the oldest surviving sample is a heavy aggregate whose mean sits in
  // the older half of the run, and the newest is raw and exact.
  EXPECT_GT(s.front().weight, 1000);
  EXPECT_LT(s.front().t_ms, 100000 / 2);
  EXPECT_EQ(s.back().t_ms, 99999);
  EXPECT_DOUBLE_EQ(s.back().value, 99999.0);
  EXPECT_EQ(s.back().weight, 1);
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s[i - 1].t_ms, s[i].t_ms);
    // Resolution decays with age: weights never increase toward now.
    EXPECT_GE(s[i - 1].weight, s[i].weight);
  }
}

TEST(TimeSeriesTest, RetiredSeriesEvictedOldestFirst) {
  TimeSeriesOptions options = SmallRing(8);
  options.max_series = 2;
  TimeSeriesStore store(options);
  auto a = store.Register("a", {});
  auto b = store.Register("b", {});
  EXPECT_EQ(store.series_count(), 2);
  // Both live: the cap cannot evict, so a third registration overflows.
  auto c = store.Register("c", {});
  EXPECT_EQ(store.series_count(), 3);
  store.Retire(a);
  store.Retire(b);
  // Now registration evicts the oldest retired series (a, then b).
  auto d = store.Register("d", {});
  EXPECT_EQ(store.series_count(), 2);  // c and d remain
  ASSERT_NE(d, TimeSeriesStore::kInvalidSeries);
  store.AppendAt(a, 1, 1.0);  // evicted id: silently ignored
  store.AppendAt(c, 1, 1.0);
  auto snaps = store.Snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].name, "c");
  EXPECT_EQ(snaps[1].name, "d");
}

TEST(TimeSeriesTest, FiltersAndJson) {
  TimeSeriesStore store(SmallRing(8));
  MetricLabels q1;
  q1.session_id = "1";
  MetricLabels q2;
  q2.session_id = "2";
  auto a = store.Register("gola_query_max_rsd", q1);
  auto b = store.Register("gola_query_max_rsd", q2);
  auto c = store.Register("gola_server_queue_depth", {});
  store.AppendAt(a, 10, 0.5);
  store.AppendAt(b, 20, 0.4);
  store.AppendAt(c, 30, 3);

  EXPECT_EQ(store.Snapshot("max_rsd").size(), 2u);
  EXPECT_EQ(store.Snapshot("", "2").size(), 1u);
  EXPECT_EQ(store.Snapshot("queue", "2").size(), 0u);
  // since_ms keeps strictly newer samples only.
  auto since = store.Snapshot("", "", 10);
  ASSERT_EQ(since.size(), 3u);
  EXPECT_TRUE(since[0].samples.empty());
  ASSERT_EQ(since[1].samples.size(), 1u);

  std::string json = store.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"period_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"gola_server_queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"session_id\": \"2\""), std::string::npos);
  EXPECT_NE(json.find("[10, 0.5]"), std::string::npos);
}

TEST(TimeSeriesTest, DisabledStoreRejectsEverything) {
  TimeSeriesOptions options;
  options.enabled = false;
  TimeSeriesStore store(options);
  auto id = store.Register("s", {});
  EXPECT_EQ(id, TimeSeriesStore::kInvalidSeries);
  auto sampled =
      store.RegisterSampled("t", {}, [] { return 1.0; });
  EXPECT_EQ(sampled, TimeSeriesStore::kInvalidSeries);
  store.Append(id, 1.0);  // no-op, no crash
  EXPECT_EQ(store.series_count(), 0);
}

TEST(TimeSeriesTest, SampledSeriesCollectsAndRetireStops) {
  TimeSeriesStore store(SmallRing(64));
  std::atomic<int> calls{0};
  auto id = store.RegisterSampled("gola_server_active_sessions", {},
                                  [&] { return static_cast<double>(++calls); });
  ASSERT_NE(id, TimeSeriesStore::kInvalidSeries);
  // Sampler runs every 5ms; wait until it demonstrably sampled.
  for (int i = 0; i < 400 && calls.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(calls.load(), 2);
  store.Retire(id);
  // Retire synchronizes with the sampler: once it returns, the callback
  // never runs again.
  const int after = calls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(calls.load(), after);
  auto snaps = store.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_TRUE(snaps[0].retired);
  EXPECT_GE(snaps[0].samples.size(), 1u);
}

TEST(TimeSeriesTest, ConcurrentWritersAndSnapshotters) {
  TimeSeriesStore store(SmallRing(64));
  constexpr int kWriters = 4;
  constexpr int kAppendsPerWriter = 5000;
  std::vector<TimeSeriesStore::SeriesId> ids;
  for (int w = 0; w < kWriters; ++w) {
    MetricLabels labels;
    labels.session_id = std::to_string(w);
    ids.push_back(store.Register("gola_query_max_rsd", labels));
  }
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      auto snaps = store.Snapshot();
      for (const auto& s : snaps) {
        for (size_t i = 1; i < s.samples.size(); ++i) {
          // Readers must never see a ring mid-compaction.
          ASSERT_LE(s.samples[i - 1].t_ms, s.samples[i].t_ms);
        }
      }
      (void)store.ToJson();
      (void)store.LatestSampleMs();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        store.AppendAt(ids[static_cast<size_t>(w)], i, static_cast<double>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  snapshotter.join();
  auto snaps = store.Snapshot();
  ASSERT_EQ(snaps.size(), static_cast<size_t>(kWriters));
  for (const auto& s : snaps) {
    EXPECT_FALSE(s.samples.empty());
    EXPECT_EQ(s.samples.back().t_ms, kAppendsPerWriter - 1);
  }
}

}  // namespace
}  // namespace obs
}  // namespace gola

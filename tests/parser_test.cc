// SQL lexer and parser: token shapes, statement structure, subqueries,
// desugarings and error reporting.
#include "parser/parser.h"

#include <gtest/gtest.h>

#include "parser/lexer.h"

namespace gola {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x1, 'it''s', 3.5e2 FROM t WHERE a <= 7 -- tail");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 12u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kSymbol);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*tokens)[3].text, "it's");
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[5].float_value, 350.0);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NormalizesNotEqual) {
  auto tokens = Tokenize("a != b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
}

TEST(LexerTest, UnterminatedStringErrors) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(ParserTest, BasicSelectShape) {
  auto stmt = ParseSql(
      "SELECT a, SUM(b) AS total FROM t WHERE c > 5 GROUP BY a "
      "HAVING SUM(b) > 10 ORDER BY total DESC LIMIT 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->items.size(), 2u);
  EXPECT_EQ((*stmt)->items[1].alias, "total");
  ASSERT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0].name, "t");
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_NE((*stmt)->having, nullptr);
  ASSERT_EQ((*stmt)->order_by.size(), 1u);
  EXPECT_TRUE((*stmt)->order_by[0].descending);
  EXPECT_EQ((*stmt)->limit, 3);
}

TEST(ParserTest, ImplicitAliasWithoutAs) {
  auto stmt = ParseSql("SELECT a + 1 b FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].alias, "b");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSql("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  // a + (b * c)
  EXPECT_EQ((*stmt)->items[0].expr->ToString(), "(a + (b * c))");
}

TEST(ParserTest, AndOrPrecedence) {
  auto stmt = ParseSql("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(), "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  auto stmt = ParseSql("SELECT 1 FROM t WHERE x BETWEEN 2 AND 8");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(), "((x >= 2) AND (x <= 8))");
}

TEST(ParserTest, NotBetween) {
  auto stmt = ParseSql("SELECT 1 FROM t WHERE x NOT BETWEEN 2 AND 8");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(), "(NOT ((x >= 2) AND (x <= 8)))");
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt = ParseSql("SELECT 1 FROM t WHERE x > (SELECT AVG(x) FROM t)");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& cmp = *(*stmt)->where;
  ASSERT_EQ(cmp.kind, AstExprKind::kComparison);
  EXPECT_EQ(cmp.children[1]->kind, AstExprKind::kSubquery);
  EXPECT_EQ(cmp.children[1]->subquery->items.size(), 1u);
}

TEST(ParserTest, InSubqueryAndNegation) {
  auto stmt = ParseSql(
      "SELECT 1 FROM t WHERE k NOT IN (SELECT k FROM t GROUP BY k HAVING COUNT(*) > 2)");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& in = *(*stmt)->where;
  ASSERT_EQ(in.kind, AstExprKind::kInSubquery);
  EXPECT_TRUE(in.negated);
}

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  auto stmt = ParseSql("SELECT 1 FROM a JOIN b ON a.k = b.k WHERE a.x > 0");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->from.size(), 2u);
  // ON condition AND the explicit WHERE.
  EXPECT_EQ((*stmt)->where->ToString(), "((a.k = b.k) AND (a.x > 0))");
}

TEST(ParserTest, CaseExpression) {
  auto stmt = ParseSql("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].expr->kind, AstExprKind::kCase);
}

TEST(ParserTest, QualifiedColumnsAndTableAlias) {
  auto stmt = ParseSql("SELECT s.x FROM sessions s");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->from[0].alias, "s");
  EXPECT_EQ((*stmt)->items[0].expr->name, "s.x");
}

TEST(ParserTest, CountStar) {
  auto stmt = ParseSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  const AstExpr& call = *(*stmt)->items[0].expr;
  ASSERT_EQ(call.kind, AstExprKind::kFunctionCall);
  EXPECT_EQ(call.children[0]->kind, AstExprKind::kStar);
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto r = ParseSql("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseSql("SELECT 1 FROM t extra junk here").ok());
}

TEST(ParserTest, DistinctIsExplicitlyUnsupported) {
  auto r = ParseSql("SELECT DISTINCT a FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* sql =
      "SELECT geo, AVG(x) AS m FROM t WHERE b > (SELECT AVG(b) FROM t) "
      "GROUP BY geo ORDER BY m DESC LIMIT 5";
  auto first = ParseSql(sql);
  ASSERT_TRUE(first.ok());
  auto second = ParseSql((*first)->ToString());
  ASSERT_TRUE(second.ok()) << (*first)->ToString();
  EXPECT_EQ((*first)->ToString(), (*second)->ToString());
}

}  // namespace
}  // namespace gola

// Aggregate-function framework: weighted updates, merges, multiplicity
// scaling, NULL-result conventions, quantiles and UDAF registration.
#include "expr/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gola {
namespace {

const AggregateFunction* Resolve(AggKind kind, double param = 0.0,
                                 const std::string& udaf = "") {
  Expr call;
  call.kind = ExprKind::kAggregateCall;
  call.agg_kind = kind;
  call.agg_param = param;
  call.func_name = udaf;
  auto fn = ResolveAggregate(call);
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  return fn.ok() ? *fn : nullptr;
}

TEST(AggregateTest, CountScalesWithMultiplicity) {
  const auto* fn = Resolve(AggKind::kCount);
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->ScalesWithMultiplicity());
  auto state = fn->CreateState();
  state->UpdateNumeric(5, 1);
  state->UpdateNumeric(9, 2);  // weight 2 counts twice
  EXPECT_DOUBLE_EQ(*state->Finalize(1.0).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*state->Finalize(10.0).ToDouble(), 30.0);
}

TEST(AggregateTest, SumWeightedAndNullWhenEmpty) {
  const auto* fn = Resolve(AggKind::kSum);
  auto state = fn->CreateState();
  EXPECT_TRUE(state->Finalize(1.0).is_null());
  state->UpdateNumeric(2.0, 3);  // 6
  state->UpdateNumeric(1.5, 1);  // 7.5
  EXPECT_DOUBLE_EQ(*state->Finalize(2.0).ToDouble(), 15.0);
}

TEST(AggregateTest, AvgIgnoresScale) {
  const auto* fn = Resolve(AggKind::kAvg);
  EXPECT_FALSE(fn->ScalesWithMultiplicity());
  auto state = fn->CreateState();
  state->UpdateNumeric(10, 1);
  state->UpdateNumeric(20, 3);  // weighted mean = 70/4
  EXPECT_DOUBLE_EQ(*state->Finalize(99.0).ToDouble(), 17.5);
}

TEST(AggregateTest, MinMaxOnValuesAndStrings) {
  const auto* min_fn = Resolve(AggKind::kMin);
  const auto* max_fn = Resolve(AggKind::kMax);
  auto mn = min_fn->CreateState();
  auto mx = max_fn->CreateState();
  for (const char* s : {"pear", "apple", "zebra"}) {
    mn->UpdateValue(Value::String(s), 1);
    mx->UpdateValue(Value::String(s), 1);
  }
  EXPECT_EQ(mn->Finalize(1.0).AsString(), "apple");
  EXPECT_EQ(mx->Finalize(1.0).AsString(), "zebra");
}

TEST(AggregateTest, VarAndStddev) {
  const auto* var_fn = Resolve(AggKind::kVar);
  const auto* sd_fn = Resolve(AggKind::kStddev);
  auto var = var_fn->CreateState();
  auto sd = sd_fn->CreateState();
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    var->UpdateNumeric(v, 1);
    sd->UpdateNumeric(v, 1);
  }
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(*var->Finalize(1.0).ToDouble(), 32.0 / 7.0, 1e-9);
  EXPECT_NEAR(*sd->Finalize(1.0).ToDouble(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(AggregateTest, MergeEqualsSingleStream) {
  const auto* fn = Resolve(AggKind::kAvg);
  auto whole = fn->CreateState();
  auto left = fn->CreateState();
  auto right = fn->CreateState();
  for (int i = 0; i < 100; ++i) {
    double v = i * 1.25;
    whole->UpdateNumeric(v, 1);
    (i % 2 == 0 ? left : right)->UpdateNumeric(v, 1);
  }
  left->Merge(*right);
  EXPECT_DOUBLE_EQ(*left->Finalize(1.0).ToDouble(), *whole->Finalize(1.0).ToDouble());
}

TEST(AggregateTest, CloneIsIndependent) {
  const auto* fn = Resolve(AggKind::kSum);
  auto a = fn->CreateState();
  a->UpdateNumeric(5, 1);
  auto b = a->Clone();
  b->UpdateNumeric(7, 1);
  EXPECT_DOUBLE_EQ(*a->Finalize(1.0).ToDouble(), 5.0);
  EXPECT_DOUBLE_EQ(*b->Finalize(1.0).ToDouble(), 12.0);
}

TEST(AggregateTest, QuantileMedianExactWhenSmall) {
  const auto* fn = Resolve(AggKind::kQuantile, 0.5);
  auto state = fn->CreateState();
  for (int i = 1; i <= 101; ++i) state->UpdateNumeric(i, 1);
  EXPECT_NEAR(*state->Finalize(1.0).ToDouble(), 51.0, 1e-9);
}

TEST(AggregateTest, QuantileReservoirApproximation) {
  const auto* fn = Resolve(AggKind::kQuantile, 0.9);
  auto state = fn->CreateState();
  for (int i = 0; i < 100000; ++i) state->UpdateNumeric(i % 1000, 1);
  // p90 of uniform 0..999 ≈ 899; reservoir sampling adds noise.
  EXPECT_NEAR(*state->Finalize(1.0).ToDouble(), 899.0, 30.0);
}

TEST(AggregateTest, UdafRegistrationAndResolution) {
  SimpleUdafSpec spec;
  spec.name = "sum_of_squares";
  spec.scales_with_multiplicity = true;
  spec.step = [](std::vector<double>& acc, double v, double w) { acc[0] += v * v * w; };
  spec.merge = [](std::vector<double>& acc, const std::vector<double>& o) {
    acc[0] += o[0];
  };
  spec.finalize = [](const std::vector<double>& acc, double scale) {
    return acc[0] * scale;
  };
  ASSERT_TRUE(RegisterUdaf(spec).ok());

  const auto* fn = Resolve(AggKind::kUdaf, 0.0, "sum_of_squares");
  ASSERT_NE(fn, nullptr);
  auto state = fn->CreateState();
  state->UpdateNumeric(3, 1);
  state->UpdateNumeric(4, 1);
  EXPECT_DOUBLE_EQ(*state->Finalize(2.0).ToDouble(), 50.0);
}

TEST(AggregateTest, UnknownUdafErrors) {
  Expr call;
  call.kind = ExprKind::kAggregateCall;
  call.agg_kind = AggKind::kUdaf;
  call.func_name = "no_such_udaf";
  EXPECT_FALSE(ResolveAggregate(call).ok());
}

TEST(AggregateTest, InvalidUdafSpecRejected) {
  SimpleUdafSpec spec;
  spec.name = "broken";
  EXPECT_FALSE(RegisterUdaf(spec).ok());
}

}  // namespace
}  // namespace gola

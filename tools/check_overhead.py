#!/usr/bin/env python3
"""CI guard for the observability overhead budget (DESIGN.md §9).

Compares two google-benchmark JSON outputs of the online-drain
microbenchmark — one run with GOLA_METRICS=1, one with GOLA_METRICS=0 —
and fails if the metrics-on median regresses more than the budget
(default 5%) against metrics-off.

Usage: check_overhead.py <metrics_on.json> <metrics_off.json> [--budget 0.05]
                         [--filter BM_OnlineDrainSbi]
"""

import argparse
import json
import statistics
import sys


def medians_by_benchmark(path, name_filter):
    """Median real_time per benchmark name (aggregates preferred)."""
    with open(path) as f:
        doc = json.load(f)
    samples = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if name_filter not in name:
            continue
        # Prefer google-benchmark's own median aggregate when repetitions
        # were requested; otherwise collect iteration rows and take our own.
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                samples[bench["run_name"]] = [bench["real_time"]]
            continue
        samples.setdefault(name, []).append(bench["real_time"])
    return {name: statistics.median(vals) for name, vals in samples.items()}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("metrics_on")
    parser.add_argument("metrics_off")
    parser.add_argument("--budget", type=float, default=0.05)
    parser.add_argument("--filter", default="BM_OnlineDrainSbi")
    args = parser.parse_args()

    on = medians_by_benchmark(args.metrics_on, args.filter)
    off = medians_by_benchmark(args.metrics_off, args.filter)
    common = sorted(set(on) & set(off))
    if not common:
        print(f"error: no '{args.filter}' benchmarks common to both files",
              file=sys.stderr)
        return 2

    failed = False
    for name in common:
        ratio = on[name] / off[name] if off[name] > 0 else float("inf")
        overhead = ratio - 1.0
        verdict = "OK" if overhead <= args.budget else "FAIL"
        if verdict == "FAIL":
            failed = True
        print(f"{verdict:4s} {name}: metrics-on {on[name]:.3f} vs "
              f"metrics-off {off[name]:.3f} -> {100 * overhead:+.2f}% "
              f"(budget {100 * args.budget:g}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI gate for BENCH_calibration.json (bench_calibration output).

Fails when empirical CI coverage drops below nominal - slack on any
workload, checked on the overall and final-update buckets. Per-update and
per-decile tables are printed for the log but only gated when they have
enough observations to be statistically meaningful (small buckets are
noisy; a 10-observation decile missing once is not a regression).

Usage:
  tools/check_calibration.py BENCH_calibration.json [--slack 0.10]
      [--min-bucket 200]
"""

import argparse
import json
import sys


def check_bucket(name, bucket, nominal, slack, failures, gate=True):
    rate = bucket.get("rate", 0.0)
    total = bucket.get("total", 0)
    floor = nominal - slack
    status = "ok"
    if gate and rate < floor:
        status = "FAIL"
        failures.append(
            f"{name}: coverage {rate:.3f} < {floor:.3f} "
            f"(nominal {nominal:.2f} - slack {slack:.2f}, n={total})"
        )
    elif not gate:
        status = "info"
    print(
        f"  {bucket.get('key', name):>12}: {bucket.get('covered', 0):>7}/"
        f"{total:<7} = {rate:.3f}  [{status}]"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_calibration.json path")
    parser.add_argument(
        "--slack",
        type=float,
        default=0.10,
        help="allowed gap below nominal coverage (default 0.10 — matches the "
        "statistics_test floor of 0.82 for a nominal 0.95 at small n)",
    )
    parser.add_argument(
        "--min-bucket",
        type=int,
        default=200,
        help="per-update / per-decile buckets below this many observations "
        "are reported but not gated",
    )
    args = parser.parse_args()

    with open(args.report, "r", encoding="utf-8") as f:
        reports = json.load(f)
    if not isinstance(reports, list) or not reports:
        print(f"error: {args.report} holds no calibration reports", file=sys.stderr)
        return 2

    failures = []
    for rep in reports:
        nominal = rep.get("nominal", 0.95)
        print(
            f"\n{rep.get('name', '?')} (nominal {nominal:.2f}, "
            f"{rep.get('seeds', 0)} seeds x {rep.get('num_batches', 0)} updates)"
        )
        name = rep.get("name", "?")
        check_bucket(f"{name}/overall", rep["overall"], nominal, args.slack, failures)
        check_bucket(
            f"{name}/final_update", rep["final_update"], nominal, args.slack, failures
        )
        for bucket in rep.get("by_update", []):
            gate = bucket.get("total", 0) >= args.min_bucket
            check_bucket(
                f"{name}/{bucket.get('key')}", bucket, nominal, args.slack,
                failures, gate=gate,
            )
        for bucket in rep.get("by_decile", []):
            gate = bucket.get("total", 0) >= args.min_bucket
            check_bucket(
                f"{name}/{bucket.get('key')}", bucket, nominal, args.slack,
                failures, gate=gate,
            )
        missing = rep.get("cells_missing_truth", 0)
        if missing:
            failures.append(
                f"{name}: {missing} online cells had no batch-truth match "
                "(group-key rendering diverged between engines)"
            )

    if failures:
        print("\nCALIBRATION GATE FAILED:", file=sys.stderr)
        for f_msg in failures:
            print(f"  - {f_msg}", file=sys.stderr)
        return 1
    print("\ncalibration gate passed: empirical coverage within slack of nominal")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Render a /timez capture — the engine's in-process time-series store —
into per-metric charts: one panel per metric name, one line per series
(labeled by session_id), so concurrent queries' convergence curves and the
server's queue depth sit on a shared wall-clock axis. Emits CSV and a
self-contained SVG; standard library only, so it runs anywhere CI does.

Usage:
  curl -s http://127.0.0.1:8080/timez > timez.json
  python3 tools/plot_timeseries.py timez.json [-o out_prefix]
  python3 tools/plot_timeseries.py timez.json --metric gola_query_max_rsd

Writes <out_prefix>.csv and <out_prefix>.svg (default: the input path
minus its extension).
"""

import argparse
import csv
import json
import sys

PALETTE = ["#1a5fb4", "#c01c28", "#26a269", "#e5a50a", "#613583",
           "#a51d2d", "#63452c", "#000000"]


def load_capture(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: malformed /timez JSON: {e}")
    series = doc.get("series", [])
    series = [s for s in series if s.get("samples")]
    if not series:
        sys.exit(f"{path}: no series with samples")
    return doc, series


def series_label(s):
    labels = s.get("labels", {})
    parts = [f"{k}={v}" for k, v in sorted(labels.items()) if v]
    return ", ".join(parts) or "(global)"


def write_csv(series, path):
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(["name", "labels", "t_ms", "value"])
        for s in series:
            label = series_label(s)
            for t_ms, value in s["samples"]:
                writer.writerow([s["name"], label, t_ms, value])


def scale(lo, hi, out_lo, out_hi):
    span = (hi - lo) or 1.0
    return lambda v: out_lo + (v - lo) / span * (out_hi - out_lo)


def axis_ticks(lo, hi, n=5):
    span = (hi - lo) or 1.0
    return [lo + span * i / (n - 1) for i in range(n)]


def fmt(v):
    a = abs(v)
    if a != 0 and (a >= 1e5 or a < 1e-3):
        return f"{v:.1e}"
    return f"{v:.3g}"


def panel(out, x0, y0, w, h, t0, t1, group, title):
    """One chart panel: every series of one metric name over [t0, t1]."""
    values = [v for s in group for _, v in s["samples"]]
    y_lo, y_hi = min(values), max(values)
    pad = (y_hi - y_lo) * 0.08 or abs(y_hi) * 0.08 or 1.0
    y_lo, y_hi = y_lo - pad, y_hi + pad
    sx = scale(t0, t1, x0, x0 + w)
    sy = scale(y_lo, y_hi, y0 + h, y0)  # SVG y grows downward

    out.append(f'<rect x="{x0}" y="{y0}" width="{w}" height="{h}" '
               'fill="white" stroke="#888"/>')
    out.append(f'<text x="{x0}" y="{y0 - 8}" font-weight="bold">'
               f'{title}</text>')
    for t in axis_ticks(y_lo, y_hi):
        y = sy(t)
        out.append(f'<line x1="{x0}" y1="{y:.2f}" x2="{x0 + w}" y2="{y:.2f}" '
                   'stroke="#ddd"/>')
        out.append(f'<text x="{x0 - 6}" y="{y + 4:.2f}" text-anchor="end" '
                   f'font-size="11">{fmt(t)}</text>')
    for t in axis_ticks(t0, t1):
        x = sx(t)
        out.append(f'<text x="{x:.2f}" y="{y0 + h + 16}" text-anchor="middle" '
                   f'font-size="11">{fmt((t - t0) / 1000.0)}</text>')

    for i, s in enumerate(group):
        color = PALETTE[i % len(PALETTE)]
        pts = " ".join(f"{sx(t):.2f},{sy(v):.2f}" for t, v in s["samples"])
        out.append(f'<polyline points="{pts}" fill="none" stroke="{color}" '
                   'stroke-width="1.5"/>')
        out.append(f'<text x="{x0 + w + 8}" y="{y0 + 14 + 15 * i}" '
                   f'font-size="11" fill="{color}">{series_label(s)}</text>')


def write_svg(series, path):
    # Group by metric name; each group gets its own panel on a shared
    # wall-clock axis, so cross-metric correlation (queue depth spiking as
    # RSD curves flatten) is visible at a glance.
    groups = {}
    for s in series:
        groups.setdefault(s["name"], []).append(s)
    t0 = min(s["samples"][0][0] for s in series)
    t1 = max(s["samples"][-1][0] for s in series)

    panel_h, gap, top, bottom = 170, 60, 40, 40
    W = 900
    H = top + len(groups) * (panel_h + gap) + bottom
    out = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" '
           f'viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="13">',
           f'<rect width="{W}" height="{H}" fill="#fafafa"/>']
    y = top
    for name in sorted(groups):
        panel(out, 80, y, W - 320, panel_h, t0, t1, groups[name], name)
        y += panel_h + gap
    out.append(f'<text x="{(W - 240) / 2 + 80}" y="{H - 12}" '
               'text-anchor="middle" font-size="12">time since capture start '
               '(s)</text>')
    out.append("</svg>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(out) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json", help="/timez capture (JSON)")
    parser.add_argument("-o", "--out", help="output prefix (default: input "
                        "path without extension)")
    parser.add_argument("--metric", help="only series whose name contains "
                        "this substring")
    parser.add_argument("--session", help="only series with this session_id "
                        "label")
    args = parser.parse_args()

    _, series = load_capture(args.json)
    if args.metric:
        series = [s for s in series if args.metric in s["name"]]
    if args.session:
        series = [s for s in series
                  if s.get("labels", {}).get("session_id") == args.session]
    if not series:
        sys.exit("no series left after filtering")

    prefix = args.out or args.json.rsplit(".", 1)[0]
    write_csv(series, prefix + ".csv")
    write_svg(series, prefix + ".svg")
    names = len({s["name"] for s in series})
    print(f"wrote {prefix}.csv and {prefix}.svg "
          f"({len(series)} series, {names} metrics)")


if __name__ == "__main__":
    main()

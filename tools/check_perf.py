#!/usr/bin/env python3
"""CI guard for the vectorized kernel speedups (DESIGN.md §11).

Reads one google-benchmark JSON output of bench_kernels, pairs each
vectorized run (`vec:1`) with its row-at-a-time reference (`vec:0`), and
fails if the vectorized median is not at least `--min-speedup` times the
reference on the group-by and replicate-update kernels. The filter
benchmark is reported but not gated by default: its two arms do different
amounts of copying work, so its ratio is informational.

Usage: check_perf.py <bench_kernels.json> [--min-speedup 1.5]
                     [--gate BM_KernelGroupBy --gate BM_KernelReplicateUpdate]
"""

import argparse
import json
import statistics
import sys


def medians_by_benchmark(path):
    """Median real_time per benchmark name (aggregates preferred)."""
    with open(path) as f:
        doc = json.load(f)
    samples = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                samples[bench["run_name"]] = [bench["real_time"]]
            continue
        samples.setdefault(name, []).append(bench["real_time"])
    return {name: statistics.median(vals) for name, vals in samples.items()}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_json")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument(
        "--gate", action="append", default=None,
        help="benchmark name prefix that must meet --min-speedup "
             "(repeatable; default: BM_KernelGroupBy, BM_KernelReplicateUpdate)")
    args = parser.parse_args()
    gates = args.gate or ["BM_KernelGroupBy", "BM_KernelReplicateUpdate"]

    medians = medians_by_benchmark(args.bench_json)
    pairs = {}  # base name (vec tag stripped) -> {0: time, 1: time}
    for name, value in medians.items():
        if "/vec:0" in name:
            pairs.setdefault(name.replace("/vec:0", ""), {})[0] = value
        elif "/vec:1" in name:
            pairs.setdefault(name.replace("/vec:1", ""), {})[1] = value
    complete = {k: v for k, v in pairs.items() if 0 in v and 1 in v}
    if not complete:
        print("error: no vec:0/vec:1 benchmark pairs found", file=sys.stderr)
        return 2

    failed = False
    for name in sorted(complete):
        ref, vec = complete[name][0], complete[name][1]
        speedup = ref / vec if vec > 0 else float("inf")
        gated = any(name.startswith(g) for g in gates)
        # B:0 rows have no replicate work to speed up; report them only.
        if "/B:0" in name:
            gated = False
        ok = speedup >= args.min_speedup
        verdict = "OK" if ok or not gated else "FAIL"
        if verdict == "FAIL":
            failed = True
        tag = "" if gated else " (informational)"
        print(f"{verdict:4s} {name}: vectorized {speedup:.2f}x reference "
              f"(floor {args.min_speedup:g}x){tag}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

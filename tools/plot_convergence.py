#!/usr/bin/env python3
"""Turn a convergence JSONL log (GolaOptions::convergence_path) into a
Figure-3-style plot: headline estimate with its CI band over query time,
plus the max-RSD decay on a second panel. Emits CSV and a self-contained
SVG; standard library only, so it runs anywhere CI does.

Usage:
  python3 tools/plot_convergence.py run.jsonl [-o out_prefix]

Writes <out_prefix>.csv and <out_prefix>.svg (default: the input path
minus its extension).
"""

import argparse
import csv
import json
import sys

CSV_FIELDS = [
    "batch_index", "fraction_processed", "elapsed_seconds", "batch_seconds",
    "estimate", "ci_lo", "ci_hi", "rsd", "max_rsd", "uncertain_tuples",
    "uncertain_groups", "recomputes", "result_rows",
]


def load_records(path):
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: malformed JSONL record: {e}")
    if not records:
        sys.exit(f"{path}: no records")
    return records


def write_csv(records, path):
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.DictWriter(f, fieldnames=CSV_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for r in records:
            writer.writerow({k: r.get(k) for k in CSV_FIELDS})


def scale(lo, hi, out_lo, out_hi):
    span = (hi - lo) or 1.0
    return lambda v: out_lo + (v - lo) / span * (out_hi - out_lo)


def polyline(points, stroke, width=1.5, dash=None):
    pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
    dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
    return (f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"{dash_attr}/>')


def axis_ticks(lo, hi, n=5):
    span = (hi - lo) or 1.0
    return [lo + span * i / (n - 1) for i in range(n)]


def fmt(v):
    a = abs(v)
    if a != 0 and (a >= 1e5 or a < 1e-3):
        return f"{v:.1e}"
    return f"{v:.3g}"


def panel(out, x0, y0, w, h, xs, series, title, ylabel, band=None):
    """One chart panel. series: list of (ys, color, dash); band: (lo, hi)."""
    ys_all = [y for ys, _, _ in series for y in ys if y is not None]
    if band:
        ys_all += [v for pair in band for v in pair if v is not None]
    if not ys_all:
        return
    y_lo, y_hi = min(ys_all), max(ys_all)
    pad = (y_hi - y_lo) * 0.08 or abs(y_hi) * 0.08 or 1.0
    y_lo, y_hi = y_lo - pad, y_hi + pad
    sx = scale(min(xs), max(xs), x0, x0 + w)
    sy = scale(y_lo, y_hi, y0 + h, y0)  # SVG y grows downward

    out.append(f'<rect x="{x0}" y="{y0}" width="{w}" height="{h}" '
               'fill="white" stroke="#888"/>')
    out.append(f'<text x="{x0 + w / 2}" y="{y0 - 8}" text-anchor="middle" '
               f'font-weight="bold">{title}</text>')
    for t in axis_ticks(y_lo, y_hi):
        y = sy(t)
        out.append(f'<line x1="{x0}" y1="{y:.2f}" x2="{x0 + w}" y2="{y:.2f}" '
                   'stroke="#ddd"/>')
        out.append(f'<text x="{x0 - 6}" y="{y + 4:.2f}" text-anchor="end" '
                   f'font-size="11">{fmt(t)}</text>')
    for t in axis_ticks(min(xs), max(xs)):
        x = sx(t)
        out.append(f'<text x="{x:.2f}" y="{y0 + h + 16}" text-anchor="middle" '
                   f'font-size="11">{fmt(t)}</text>')
    out.append(f'<text x="{x0 - 52}" y="{y0 + h / 2}" text-anchor="middle" '
               f'font-size="11" transform="rotate(-90 {x0 - 52} {y0 + h / 2})">'
               f'{ylabel}</text>')

    if band:
        lo_pts = [(sx(x), sy(v)) for x, v in zip(xs, band[0]) if v is not None]
        hi_pts = [(sx(x), sy(v)) for x, v in zip(xs, band[1]) if v is not None]
        if lo_pts and hi_pts:
            ring = " ".join(f"{x:.2f},{y:.2f}" for x, y in lo_pts + hi_pts[::-1])
            out.append(f'<polygon points="{ring}" fill="#4a90d9" '
                       'fill-opacity="0.18" stroke="none"/>')
    for ys, color, dash in series:
        pts = [(sx(x), sy(v)) for x, v in zip(xs, ys) if v is not None]
        if pts:
            out.append(polyline(pts, color, dash=dash))


def write_svg(records, path):
    xs = [r["elapsed_seconds"] for r in records]
    est = [r.get("estimate") for r in records]
    lo = [r.get("ci_lo") for r in records]
    hi = [r.get("ci_hi") for r in records]
    rsd = [100 * r["max_rsd"] for r in records]
    recomputes = [r.get("recomputes", 0) for r in records]

    W, H = 760, 620
    out = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" '
           f'viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="13">',
           f'<rect width="{W}" height="{H}" fill="#fafafa"/>']
    panel(out, 90, 40, W - 140, 230, xs, [(est, "#1a5fb4", None)],
          "Online estimate with confidence band", "estimate", band=(lo, hi))
    panel(out, 90, 350, W - 140, 190, xs,
          [(rsd, "#c01c28", None)],
          "Max relative standard deviation", "max RSD (%)")
    # Recompute markers on the RSD panel's time axis.
    marks = [x for x, prev, cur in
             zip(xs[1:], recomputes, recomputes[1:]) if cur > prev]
    sx = scale(min(xs), max(xs), 90, W - 50)
    for x in marks:
        out.append(f'<line x1="{sx(x):.2f}" y1="350" x2="{sx(x):.2f}" y2="540" '
                   'stroke="#e5a50a" stroke-width="1.5" stroke-dasharray="4,3"/>')
    out.append(f'<text x="{W / 2}" y="{H - 28}" text-anchor="middle" '
               'font-size="12">query time (s)'
               + (" — dashed: range-failure recompute" if marks else "")
               + "</text>")
    out.append(f'<text x="{W / 2}" y="{H - 8}" text-anchor="middle" '
               f'font-size="11" fill="#666">{len(records)} batches, '
               f'{records[-1]["recomputes"]} recomputes, final max RSD '
               f'{fmt(rsd[-1])}%</text>')
    out.append("</svg>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(out) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="convergence JSONL file")
    parser.add_argument("-o", "--out", help="output prefix (default: input "
                        "path without extension)")
    args = parser.parse_args()

    records = load_records(args.jsonl)
    prefix = args.out or args.jsonl.rsplit(".", 1)[0]
    write_csv(records, prefix + ".csv")
    write_svg(records, prefix + ".svg")
    print(f"wrote {prefix}.csv and {prefix}.svg ({len(records)} records)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Render BENCH_calibration.json as CSV + SVG (stdlib only, like
tools/plot_convergence.py): one panel per workload showing empirical
coverage by update index and by group-size decile against the nominal
level.

Usage:
  tools/plot_calibration.py BENCH_calibration.json [-o calibration.svg]
      [--csv calibration.csv]
"""

import argparse
import json

WIDTH, PANEL_H, MARGIN = 640, 180, 48


def scale(v, lo, hi, out_lo, out_hi):
    if hi <= lo:
        return out_lo
    return out_lo + (v - lo) / (hi - lo) * (out_hi - out_lo)


def polyline(points, color, width=2, dash=None):
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
    return (
        f'<polyline fill="none" stroke="{color}" stroke-width="{width}"'
        f'{dash_attr} points="{pts}"/>'
    )


def text(x, y, s, size=11, anchor="start", color="#333"):
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" fill="{color}" '
        f'text-anchor="{anchor}" font-family="sans-serif">{s}</text>'
    )


def panel(rep, y0):
    """One workload: coverage-by-update polyline + per-decile dots."""
    parts = []
    x_lo, x_hi = MARGIN, WIDTH - MARGIN
    y_lo, y_hi = y0 + PANEL_H - 28, y0 + 22  # SVG y grows downward
    nominal = rep.get("nominal", 0.95)
    cov_lo = 0.7  # axis floor: coverage below 0.7 is off-the-chart broken

    parts.append(text(x_lo, y0 + 14, rep.get("name", "?"), size=13))
    # Axis frame + nominal line.
    parts.append(polyline([(x_lo, y_hi), (x_lo, y_lo), (x_hi, y_lo)], "#999", 1))
    ny = scale(nominal, cov_lo, 1.0, y_lo, y_hi)
    parts.append(polyline([(x_lo, ny), (x_hi, ny)], "#c33", 1, dash="4,3"))
    parts.append(text(x_hi, ny - 3, f"nominal {nominal:.2f}", 10, "end", "#c33"))
    for tick in (0.7, 0.8, 0.9, 1.0):
        ty = scale(tick, cov_lo, 1.0, y_lo, y_hi)
        parts.append(text(x_lo - 4, ty + 3, f"{tick:.1f}", 9, "end", "#777"))

    by_update = [b for b in rep.get("by_update", []) if b.get("total", 0) > 0]
    if by_update:
        pts = [
            (
                scale(i, 0, max(len(by_update) - 1, 1), x_lo, x_hi),
                scale(max(b["rate"], cov_lo), cov_lo, 1.0, y_lo, y_hi),
            )
            for i, b in enumerate(by_update)
        ]
        parts.append(polyline(pts, "#36c"))
        parts.append(text(x_lo, y_lo + 14, "update index →", 9, "start", "#36c"))

    by_decile = [b for b in rep.get("by_decile", []) if b.get("total", 0) > 0]
    for i, b in enumerate(by_decile):
        x = scale(i, 0, max(len(by_decile) - 1, 1), x_lo, x_hi)
        y = scale(max(b["rate"], cov_lo), cov_lo, 1.0, y_lo, y_hi)
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" fill="#393" '
            f'opacity="0.8"><title>{b["key"]}: {b["rate"]:.3f} '
            f'(n={b["total"]})</title></circle>'
        )
    if by_decile:
        parts.append(
            text(x_hi, y_lo + 14, "● group-size decile (small → large)", 9,
                 "end", "#393")
        )
    overall = rep.get("overall", {})
    parts.append(
        text(
            x_hi, y0 + 14,
            f"overall {overall.get('rate', 0):.3f} "
            f"(n={overall.get('total', 0)})",
            10, "end",
        )
    )
    return parts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_calibration.json path")
    parser.add_argument("-o", "--out", default="calibration.svg")
    parser.add_argument("--csv", default=None, help="also write a flat CSV")
    args = parser.parse_args()

    with open(args.report, "r", encoding="utf-8") as f:
        reports = json.load(f)

    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as f:
            f.write("workload,bucket,covered,total,rate\n")
            for rep in reports:
                buckets = (
                    [rep["overall"], rep["final_update"]]
                    + rep.get("by_update", [])
                    + rep.get("by_decile", [])
                )
                for b in buckets:
                    f.write(
                        f"{rep['name']},{b['key']},{b['covered']},"
                        f"{b['total']},{b['rate']:.6f}\n"
                    )
        print(f"wrote {args.csv}")

    height = len(reports) * PANEL_H + 16
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" viewBox="0 0 {WIDTH} {height}">',
        f'<rect width="{WIDTH}" height="{height}" fill="white"/>',
    ]
    for i, rep in enumerate(reports):
        parts.extend(panel(rep, 8 + i * PANEL_H))
    parts.append("</svg>")
    with open(args.out, "w", encoding="utf-8") as f:
        f.write("\n".join(parts))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

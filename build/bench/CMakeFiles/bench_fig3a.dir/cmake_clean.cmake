file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a.dir/bench_fig3a.cc.o"
  "CMakeFiles/bench_fig3a.dir/bench_fig3a.cc.o.d"
  "bench_fig3a"
  "bench_fig3a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

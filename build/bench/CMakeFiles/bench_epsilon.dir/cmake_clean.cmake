file(REMOVE_RECURSE
  "CMakeFiles/bench_epsilon.dir/bench_epsilon.cc.o"
  "CMakeFiles/bench_epsilon.dir/bench_epsilon.cc.o.d"
  "bench_epsilon"
  "bench_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

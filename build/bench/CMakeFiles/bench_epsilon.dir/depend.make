# Empty dependencies file for bench_epsilon.
# This may be replaced when dependencies are built.

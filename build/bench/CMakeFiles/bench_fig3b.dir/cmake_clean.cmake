file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b.dir/bench_fig3b.cc.o"
  "CMakeFiles/bench_fig3b.dir/bench_fig3b.cc.o.d"
  "bench_fig3b"
  "bench_fig3b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

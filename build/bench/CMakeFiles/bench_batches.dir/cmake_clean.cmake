file(REMOVE_RECURSE
  "CMakeFiles/bench_batches.dir/bench_batches.cc.o"
  "CMakeFiles/bench_batches.dir/bench_batches.cc.o.d"
  "bench_batches"
  "bench_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

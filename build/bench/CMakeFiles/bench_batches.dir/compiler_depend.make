# Empty compiler generated dependencies file for bench_batches.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_uncertain.dir/bench_uncertain.cc.o"
  "CMakeFiles/bench_uncertain.dir/bench_uncertain.cc.o.d"
  "bench_uncertain"
  "bench_uncertain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uncertain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_uncertain.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_replicates.dir/bench_replicates.cc.o"
  "CMakeFiles/bench_replicates.dir/bench_replicates.cc.o.d"
  "bench_replicates"
  "bench_replicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_replicates.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cdm.cc" "src/CMakeFiles/gola.dir/baseline/cdm.cc.o" "gcc" "src/CMakeFiles/gola.dir/baseline/cdm.cc.o.d"
  "/root/repo/src/baseline/naive_ola.cc" "src/CMakeFiles/gola.dir/baseline/naive_ola.cc.o" "gcc" "src/CMakeFiles/gola.dir/baseline/naive_ola.cc.o.d"
  "/root/repo/src/bootstrap/ci.cc" "src/CMakeFiles/gola.dir/bootstrap/ci.cc.o" "gcc" "src/CMakeFiles/gola.dir/bootstrap/ci.cc.o.d"
  "/root/repo/src/bootstrap/poisson.cc" "src/CMakeFiles/gola.dir/bootstrap/poisson.cc.o" "gcc" "src/CMakeFiles/gola.dir/bootstrap/poisson.cc.o.d"
  "/root/repo/src/bootstrap/replicated_agg.cc" "src/CMakeFiles/gola.dir/bootstrap/replicated_agg.cc.o" "gcc" "src/CMakeFiles/gola.dir/bootstrap/replicated_agg.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/gola.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/gola.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gola.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gola.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/gola.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/gola.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/gola.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/gola.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/exec/batch_executor.cc" "src/CMakeFiles/gola.dir/exec/batch_executor.cc.o" "gcc" "src/CMakeFiles/gola.dir/exec/batch_executor.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/gola.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/gola.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/gola.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/gola.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/gola.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/gola.dir/exec/sort.cc.o.d"
  "/root/repo/src/expr/aggregate.cc" "src/CMakeFiles/gola.dir/expr/aggregate.cc.o" "gcc" "src/CMakeFiles/gola.dir/expr/aggregate.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/gola.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/gola.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/gola.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/gola.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/functions.cc" "src/CMakeFiles/gola.dir/expr/functions.cc.o" "gcc" "src/CMakeFiles/gola.dir/expr/functions.cc.o.d"
  "/root/repo/src/gola/block_executor.cc" "src/CMakeFiles/gola.dir/gola/block_executor.cc.o" "gcc" "src/CMakeFiles/gola.dir/gola/block_executor.cc.o.d"
  "/root/repo/src/gola/controller.cc" "src/CMakeFiles/gola.dir/gola/controller.cc.o" "gcc" "src/CMakeFiles/gola.dir/gola/controller.cc.o.d"
  "/root/repo/src/gola/engine.cc" "src/CMakeFiles/gola.dir/gola/engine.cc.o" "gcc" "src/CMakeFiles/gola.dir/gola/engine.cc.o.d"
  "/root/repo/src/gola/online_agg.cc" "src/CMakeFiles/gola.dir/gola/online_agg.cc.o" "gcc" "src/CMakeFiles/gola.dir/gola/online_agg.cc.o.d"
  "/root/repo/src/gola/uncertain.cc" "src/CMakeFiles/gola.dir/gola/uncertain.cc.o" "gcc" "src/CMakeFiles/gola.dir/gola/uncertain.cc.o.d"
  "/root/repo/src/parser/ast.cc" "src/CMakeFiles/gola.dir/parser/ast.cc.o" "gcc" "src/CMakeFiles/gola.dir/parser/ast.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/gola.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/gola.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/gola.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/gola.dir/parser/parser.cc.o.d"
  "/root/repo/src/plan/binder.cc" "src/CMakeFiles/gola.dir/plan/binder.cc.o" "gcc" "src/CMakeFiles/gola.dir/plan/binder.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/gola.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/gola.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/storage/chunk.cc" "src/CMakeFiles/gola.dir/storage/chunk.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/chunk.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/gola.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/gola.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/data_type.cc" "src/CMakeFiles/gola.dir/storage/data_type.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/data_type.cc.o.d"
  "/root/repo/src/storage/partitioner.cc" "src/CMakeFiles/gola.dir/storage/partitioner.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/partitioner.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/gola.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/serde.cc" "src/CMakeFiles/gola.dir/storage/serde.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/serde.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/gola.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/gola.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/gola.dir/storage/value.cc.o.d"
  "/root/repo/src/workload/conviva_gen.cc" "src/CMakeFiles/gola.dir/workload/conviva_gen.cc.o" "gcc" "src/CMakeFiles/gola.dir/workload/conviva_gen.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/gola.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/gola.dir/workload/queries.cc.o.d"
  "/root/repo/src/workload/tpch_gen.cc" "src/CMakeFiles/gola.dir/workload/tpch_gen.cc.o" "gcc" "src/CMakeFiles/gola.dir/workload/tpch_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for gola.
# This may be replaced when dependencies are built.

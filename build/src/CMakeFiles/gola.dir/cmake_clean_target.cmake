file(REMOVE_RECURSE
  "libgola.a"
)

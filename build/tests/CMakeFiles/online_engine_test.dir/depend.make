# Empty dependencies file for online_engine_test.
# This may be replaced when dependencies are built.

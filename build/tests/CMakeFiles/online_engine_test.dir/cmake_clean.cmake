file(REMOVE_RECURSE
  "CMakeFiles/online_engine_test.dir/online_engine_test.cc.o"
  "CMakeFiles/online_engine_test.dir/online_engine_test.cc.o.d"
  "online_engine_test"
  "online_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

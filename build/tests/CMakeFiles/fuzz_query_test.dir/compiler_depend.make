# Empty compiler generated dependencies file for fuzz_query_test.
# This may be replaced when dependencies are built.

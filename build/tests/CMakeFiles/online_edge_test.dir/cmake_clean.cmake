file(REMOVE_RECURSE
  "CMakeFiles/online_edge_test.dir/online_edge_test.cc.o"
  "CMakeFiles/online_edge_test.dir/online_edge_test.cc.o.d"
  "online_edge_test"
  "online_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

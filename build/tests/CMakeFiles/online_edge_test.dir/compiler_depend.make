# Empty compiler generated dependencies file for online_edge_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ad_optimization.dir/ad_optimization.cpp.o"
  "CMakeFiles/ad_optimization.dir/ad_optimization.cpp.o.d"
  "ad_optimization"
  "ad_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ad_optimization.
# This may be replaced when dependencies are built.

// Real-time ad optimization (paper §6.2, scenario 1): MyTube Inc. wants to
// re-optimize ad placement every minute, not every day. The analyst keeps a
// per-ad dashboard of abnormal-session counts (sessions buffering well
// above the ad's own average — the correlated C3 query) refreshed with
// progressively tighter error bars, and flags ads whose badness is already
// statistically separated from the fleet.
#include <cstdio>

#include "gola/gola.h"
#include "workload/conviva_gen.h"
#include "workload/queries.h"

int main() {
  using namespace gola;

  Engine engine;
  ConvivaGenOptions gen;
  gen.num_rows = 400'000;
  gen.num_ads = 24;
  GOLA_CHECK_OK(engine.RegisterTable("conviva", GenerateConviva(gen)));

  // Per-ad: how many sessions buffer >1.5x the ad's own average, and what
  // playback those sessions still achieve (correlated nested aggregate).
  std::string sql = C3Query();
  std::printf("query:\n  %s\n\n", sql.c_str());

  GolaOptions options;
  options.num_batches = 40;
  options.bootstrap_replicates = 100;
  auto online = engine.ExecuteOnline(sql, options);
  GOLA_CHECK_OK(online.status());

  // A dashboard would re-render every refresh; here we print snapshots.
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    GOLA_CHECK_OK(update.status());
    bool snapshot = update->batch_index == 1 || update->batch_index == 5 ||
                    update->batch_index == update->total_batches;
    if (!snapshot) continue;

    std::printf("--- after %d/%d mini-batches (%.0f%% of data, %.2fs) ---\n",
                update->batch_index, update->total_batches,
                100 * update->fraction_processed, update->elapsed_seconds);
    std::printf("%8s %22s %24s\n", "ad_id", "abnormal sessions", "avg play of abnormal");
    const Table& r = update->result;
    // Columns: ad_id, abnormal_sessions, avg_play, then _lo/_hi/_rsd pairs.
    auto col = [&](const char* name) {
      return r.schema()->FieldIndex(name).ValueOr(-1);
    };
    int c_sessions = col("abnormal_sessions");
    int c_lo = col("abnormal_sessions_lo");
    int c_hi = col("abnormal_sessions_hi");
    int c_play = col("avg_play");
    for (int64_t i = 0; i < std::min<int64_t>(r.num_rows(), 6); ++i) {
      std::printf("%8s %10.0f [%6.0f,%6.0f] %16.1f s\n",
                  r.At(i, 0).ToString().c_str(),
                  r.At(i, c_sessions).ToDouble().ValueOr(0),
                  r.At(i, c_lo).ToDouble().ValueOr(0),
                  r.At(i, c_hi).ToDouble().ValueOr(0),
                  r.At(i, c_play).ToDouble().ValueOr(0));
    }
    // Actionable signal: the worst ad is separated from the runner-up when
    // their confidence intervals no longer overlap.
    if (r.num_rows() >= 2) {
      double worst_lo = r.At(0, c_lo).ToDouble().ValueOr(0);
      double second_hi = r.At(1, c_hi).ToDouble().ValueOr(0);
      if (worst_lo > second_hi) {
        std::printf(">>> ad %s is confidently the worst performer — rotate it out\n",
                    r.At(0, 0).ToString().c_str());
      } else {
        std::printf("    (top-2 ads not yet statistically separated — keep refining)\n");
      }
    }
    std::printf("\n");
  }
  return 0;
}

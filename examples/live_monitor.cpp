// Live introspection demo: runs a multi-batch online query slowly enough
// to watch from the outside. With GOLA_HTTP_PORT set, the embedded server
// exposes /metrics, /statusz, /tracez and /flightz while batches stream;
// the convergence recorder writes one JSONL record per update that
// tools/plot_convergence.py turns into a Figure-3-style plot.
//
//   GOLA_HTTP_PORT=8080 ./live_monitor &
//   curl -s localhost:8080/statusz | python3 -m json.tool
//
// Knobs (all env): GOLA_MONITOR_ROWS (table size, default 400000),
// GOLA_MONITOR_BATCHES (default 40), GOLA_MONITOR_BATCH_MS (pause after
// each batch so scrapes catch the query mid-flight, default 150),
// GOLA_CONVERGENCE_PATH (default live_monitor.convergence.jsonl).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "gola/gola.h"
#include "obs/http_server.h"
#include "workload/conviva_gen.h"
#include "workload/queries.h"

namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 10) : fallback;
}

}  // namespace

int main() {
  using namespace gola;

  const int64_t rows = EnvInt("GOLA_MONITOR_ROWS", 400'000);
  const int batches = static_cast<int>(EnvInt("GOLA_MONITOR_BATCHES", 40));
  const int batch_ms = static_cast<int>(EnvInt("GOLA_MONITOR_BATCH_MS", 150));

  Engine engine;
  ConvivaGenOptions gen;
  gen.num_rows = rows;
  gen.num_ads = 16;
  GOLA_CHECK_OK(engine.RegisterTable("conviva", GenerateConviva(gen)));

  GolaOptions opts;
  opts.num_batches = batches;
  opts.bootstrap_replicates = 80;
  // http_port stays -1: the controller consults GOLA_HTTP_PORT itself, so
  // this binary needs no flag parsing to become scrape-able.
  const char* conv = std::getenv("GOLA_CONVERGENCE_PATH");
  opts.convergence_path = conv ? conv : "live_monitor.convergence.jsonl";

  auto online = engine.ExecuteOnline(SbiQuery(), opts);
  GOLA_CHECK_OK(online.status());

  if (obs::HttpServer* server = obs::IntrospectionServer()) {
    std::printf("introspection: http://127.0.0.1:%d/statusz\n", server->port());
  } else {
    std::printf("introspection server off (set GOLA_HTTP_PORT to enable)\n");
  }
  std::printf("convergence log: %s\n\n", opts.convergence_path.c_str());
  std::printf("%8s %9s %10s %12s %12s\n", "batch", "data(%)", "rsd(%)",
              "uncertain", "recomputes");

  while (!(*online)->done()) {
    auto update = (*online)->Step();
    GOLA_CHECK_OK(update.status());
    std::printf("%8d %9.1f %10.3f %12lld %12d\n", update->batch_index,
                100 * update->fraction_processed, 100 * update->max_rsd,
                static_cast<long long>(update->uncertain_tuples),
                update->recomputes_so_far);
    std::fflush(stdout);
    if (batch_ms > 0 && !(*online)->done()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(batch_ms));
    }
  }
  std::printf("\ndone: %d batches, convergence trajectory in %s\n", batches,
              opts.convergence_path.c_str());
  return 0;
}

// Live introspection demo: runs a multi-batch online query slowly enough
// to watch from the outside. With GOLA_HTTP_PORT set, the embedded server
// exposes /metrics, /statusz, /tracez and /flightz while batches stream;
// the convergence recorder writes one JSONL record per update that
// tools/plot_convergence.py turns into a Figure-3-style plot.
//
//   GOLA_HTTP_PORT=8080 ./live_monitor &
//   curl -s localhost:8080/statusz | python3 -m json.tool
//
// Knobs (all env): GOLA_MONITOR_ROWS (table size, default 400000),
// GOLA_MONITOR_BATCHES (default 40), GOLA_MONITOR_BATCH_MS (pause after
// each batch so scrapes catch the query mid-flight, default 150),
// GOLA_CONVERGENCE_PATH (default live_monitor.convergence.jsonl),
// GOLA_CHECKPOINT_PATH (when set: checkpoint after every batch, and resume
// from the file when it already exists — kill -9 this process mid-query,
// rerun it with the same env, and it continues at the next batch with a
// bit-identical final answer; the CI chaos job does exactly that).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "gola/gola.h"
#include "obs/http_server.h"
#include "workload/conviva_gen.h"
#include "workload/queries.h"

namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 10) : fallback;
}

}  // namespace

int main() {
  using namespace gola;

  const int64_t rows = EnvInt("GOLA_MONITOR_ROWS", 400'000);
  const int batches = static_cast<int>(EnvInt("GOLA_MONITOR_BATCHES", 40));
  const int batch_ms = static_cast<int>(EnvInt("GOLA_MONITOR_BATCH_MS", 150));

  Engine engine;
  ConvivaGenOptions gen;
  gen.num_rows = rows;
  gen.num_ads = 16;
  GOLA_CHECK_OK(engine.RegisterTable("conviva", GenerateConviva(gen)));

  GolaOptions opts;
  opts.num_batches = batches;
  opts.bootstrap_replicates = 80;
  // http_port stays -1: the controller consults GOLA_HTTP_PORT itself, so
  // this binary needs no flag parsing to become scrape-able.
  const char* conv = std::getenv("GOLA_CONVERGENCE_PATH");
  opts.convergence_path = conv ? conv : "live_monitor.convergence.jsonl";

  // Crash-resume demo: with GOLA_CHECKPOINT_PATH set, pick up where a
  // previous (possibly SIGKILLed) process left off, and checkpoint after
  // every batch so at most one batch of work is ever lost.
  const char* ckpt_env = std::getenv("GOLA_CHECKPOINT_PATH");
  const std::string checkpoint_path = ckpt_env ? ckpt_env : "";
  FILE* existing =
      checkpoint_path.empty() ? nullptr : std::fopen(checkpoint_path.c_str(), "rb");
  const bool resuming = existing != nullptr;
  if (existing) std::fclose(existing);

  auto online = resuming
                    ? engine.ResumeOnline(SbiQuery(), checkpoint_path, opts)
                    : engine.ExecuteOnline(SbiQuery(), opts);
  GOLA_CHECK_OK(online.status());
  if (resuming) {
    std::printf("resumed from %s at batch %d/%d\n", checkpoint_path.c_str(),
                (*online)->batches_processed(), (*online)->total_batches());
  }

  if (obs::HttpServer* server = obs::IntrospectionServer()) {
    std::printf("introspection: http://127.0.0.1:%d/statusz\n", server->port());
  } else {
    std::printf("introspection server off (set GOLA_HTTP_PORT to enable)\n");
  }
  std::printf("convergence log: %s\n\n", opts.convergence_path.c_str());
  std::printf("%8s %9s %10s %12s %12s\n", "batch", "data(%)", "rsd(%)",
              "uncertain", "recomputes");

  Table final_result;
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    GOLA_CHECK_OK(update.status());
    if (update->result.num_rows() > 0) final_result = update->result;
    std::printf("%8d %9.1f %10.3f %12lld %12d\n", update->batch_index,
                100 * update->fraction_processed, 100 * update->max_rsd,
                static_cast<long long>(update->uncertain_tuples),
                update->recomputes_so_far);
    std::fflush(stdout);
    if (!checkpoint_path.empty()) {
      GOLA_CHECK_OK((*online)->Checkpoint(checkpoint_path));
    }
    if (batch_ms > 0 && !(*online)->done()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(batch_ms));
    }
  }
  // Final answer last, on its own marker line: the kill-resume smoke diffs
  // this block between an interrupted+resumed run and a clean one.
  std::printf("\nfinal result:\n%s", final_result.ToString(100).c_str());
  std::printf("\ndone: %d batches, convergence trajectory in %s\n", batches,
              opts.convergence_path.c_str());
  return 0;
}

// Quickstart: load a small session log, run the paper's SBI query (Example
// 1) online, and watch the answer refine batch by batch — stopping early
// once the confidence is good enough, exactly the OLA user control.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "gola/gola.h"
#include "workload/conviva_gen.h"

int main() {
  using namespace gola;

  // 1. Make an engine and register a table. Any Table works — build your
  //    own with TableBuilder, load a CSV with ReadCsv, or generate one.
  Engine engine;
  ConvivaGenOptions gen;
  gen.num_rows = 200'000;
  GOLA_CHECK_OK(engine.RegisterTable("conviva", GenerateConviva(gen)));

  const char* kSbi =
      "SELECT AVG(play_time) AS avg_play FROM conviva "
      "WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva)";

  // 2. The traditional way: block until the exact answer is ready.
  auto exact = engine.ExecuteBatch(kSbi);
  GOLA_CHECK_OK(exact.status());
  std::printf("exact answer (batch engine): %s\n\n", exact->At(0, 0).ToString().c_str());

  // 3. The G-OLA way: iteratively refined approximate answers.
  GolaOptions options;
  options.num_batches = 25;
  options.bootstrap_replicates = 100;
  auto online = engine.ExecuteOnline(kSbi, options);
  GOLA_CHECK_OK(online.status());

  std::printf("%6s %12s %22s %8s %11s\n", "batch", "estimate", "95% CI", "rsd",
              "uncertain");
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    GOLA_CHECK_OK(update.status());
    const Table& r = update->result;
    // Columns: avg_play, avg_play_lo, avg_play_hi, avg_play_rsd.
    std::printf("%6d %12.3f [%9.3f,%9.3f] %7.2f%% %11lld\n", update->batch_index,
                r.At(0, 0).ToDouble().ValueOr(0), r.At(0, 1).ToDouble().ValueOr(0),
                r.At(0, 2).ToDouble().ValueOr(0),
                100 * r.At(0, 3).ToDouble().ValueOr(0),
                static_cast<long long>(update->uncertain_tuples));
    // 4. Stop whenever the accuracy is good enough — the whole point of
    //    online aggregation (§1 of the paper).
    if (update->max_rsd < 0.005) {
      std::printf("\nreached 0.5%% relative standard deviation after %.0f%% of "
                  "the data — stopping early.\n",
                  100 * update->fraction_processed);
      break;
    }
  }
  return 0;
}

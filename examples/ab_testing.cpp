// A/B testing (paper §6.2, scenario 2): MyTube Inc. experiments with a new
// ad-load policy on half its traffic and wants to know *as early as
// possible* whether engagement (play time) differs between the arms. The
// analyst registers a user-defined aggregate for the engagement score,
// streams the experiment log online, and stops as soon as the two arms'
// confidence intervals separate — or concludes "no detectable difference"
// after the full pass.
#include <cstdio>

#include "common/random.h"
#include "gola/gola.h"

namespace {

// The experiment log: each session is assigned to arm A (0) or B (1); arm B
// truly improves engagement by ~3%.
gola::Table MakeExperimentLog(int64_t n, uint64_t seed) {
  using namespace gola;
  Rng rng(seed);
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"session_id", TypeId::kInt64},
      {"arm", TypeId::kInt64},
      {"play_time", TypeId::kFloat64},
      {"clicks", TypeId::kFloat64},
  });
  TableBuilder builder(schema);
  for (int64_t i = 0; i < n; ++i) {
    int64_t arm = rng.Bernoulli(0.5) ? 1 : 0;
    double lift = arm == 1 ? 1.03 : 1.00;
    double play = rng.Exponential(600.0) * lift;
    double clicks = rng.Poisson(2.0 * lift);
    builder.AppendRow({Value::Int(i), Value::Int(arm), Value::Float(play),
                       Value::Float(clicks)});
  }
  return builder.Finish();
}

}  // namespace

int main() {
  using namespace gola;

  Engine engine;
  GOLA_CHECK_OK(engine.RegisterTable("experiment", MakeExperimentLog(600'000, 2026)));

  // User-defined aggregate (paper §2: "user-defined functions and
  // aggregates"): an engagement score blending play time and clicks.
  SimpleUdafSpec engagement;
  engagement.name = "engagement";
  engagement.state_size = 2;  // [weighted sum, weight]
  engagement.step = [](std::vector<double>& acc, double v, double w) {
    acc[0] += v * w;
    acc[1] += w;
  };
  engagement.merge = [](std::vector<double>& acc, const std::vector<double>& other) {
    acc[0] += other[0];
    acc[1] += other[1];
  };
  engagement.finalize = [](const std::vector<double>& acc, double) {
    return acc[1] > 0 ? acc[0] / acc[1] : 0.0;
  };
  GOLA_CHECK_OK(RegisterUdaf(engagement));

  // Scalar UDF mixing the two engagement signals.
  ScalarFunction score;
  score.name = "score";
  score.arity = 2;
  score.bind = [](const std::vector<TypeId>&) -> Result<TypeId> {
    return TypeId::kFloat64;
  };
  score.eval = [](const std::vector<Column>& args) -> Result<Column> {
    Column out(TypeId::kFloat64);
    for (size_t i = 0; i < args[0].size(); ++i) {
      out.AppendFloat(args[0].NumericAt(i) + 120.0 * args[1].NumericAt(i));
    }
    return out;
  };
  FunctionRegistry::Global().Register(score);

  const char* sql =
      "SELECT arm, engagement(score(play_time, clicks)) AS eng, COUNT(*) AS n "
      "FROM experiment GROUP BY arm ORDER BY arm";

  GolaOptions options;
  options.num_batches = 60;
  options.bootstrap_replicates = 100;
  auto online = engine.ExecuteOnline(sql, options);
  GOLA_CHECK_OK(online.status());

  std::printf("%6s | %-34s | %-34s | decision\n", "batch", "arm A engagement [CI]",
              "arm B engagement [CI]");
  while (!(*online)->done()) {
    auto update = (*online)->Step();
    GOLA_CHECK_OK(update.status());
    const Table& r = update->result;
    if (r.num_rows() < 2) continue;
    int c_eng = r.schema()->FieldIndex("eng").ValueOr(1);
    int c_lo = r.schema()->FieldIndex("eng_lo").ValueOr(3);
    int c_hi = r.schema()->FieldIndex("eng_hi").ValueOr(4);
    double a = r.At(0, c_eng).ToDouble().ValueOr(0);
    double a_lo = r.At(0, c_lo).ToDouble().ValueOr(0);
    double a_hi = r.At(0, c_hi).ToDouble().ValueOr(0);
    double b = r.At(1, c_eng).ToDouble().ValueOr(0);
    double b_lo = r.At(1, c_lo).ToDouble().ValueOr(0);
    double b_hi = r.At(1, c_hi).ToDouble().ValueOr(0);

    bool separated = b_lo > a_hi || a_lo > b_hi;
    if (update->batch_index % 5 == 0 || separated) {
      std::printf("%6d | %8.1f [%8.1f, %8.1f] | %8.1f [%8.1f, %8.1f] | %s\n",
                  update->batch_index, a, a_lo, a_hi, b, b_lo, b_hi,
                  separated ? (b > a ? "B wins" : "A wins") : "inconclusive");
    }
    if (separated) {
      std::printf("\narms separated after %.0f%% of the log (%.2fs) — "
                  "ship arm %s.\n",
                  100 * update->fraction_processed, update->elapsed_seconds,
                  b > a ? "B" : "A");
      return 0;
    }
  }
  std::printf("\nno detectable difference after the full pass.\n");
  return 0;
}

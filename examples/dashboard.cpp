// The demo scenario of the paper's §6: a MyTube Inc. operations dashboard
// cycling through ad-popularity and user-retention metrics, every panel an
// online query whose error bars tighten as mini-batches stream in — the
// text-mode equivalent of the paper's Figure 4 web dashboard, with the
// traditional batch engine's latency shown for contrast.
//
// Two modes:
//   ./dashboard                 the classic single-process panel demo
//   ./dashboard --serve         multi-client server: every dashboard panel
//                               becomes a POST /query Server-Sent-Events
//                               stream, and concurrent panels over the same
//                               table share one mini-batch scan. Try:
//       curl -sN -X POST --data 'SELECT AVG(play_time) FROM conviva'
//            'http://127.0.0.1:8080/query?batches=30'
//   flags: --port=N (default 8080), --rows=N (default 200000)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "gola/gola.h"
#include "obs/http_server.h"
#include "server/http_service.h"
#include "workload/conviva_gen.h"
#include "workload/queries.h"

namespace {

/// Renders a crude inline error bar: value with a [lo──hi] span.
std::string Bar(double lo, double hi, double full_lo, double full_hi) {
  const int kWidth = 24;
  auto pos = [&](double v) {
    double t = (v - full_lo) / std::max(1e-9, full_hi - full_lo);
    return std::clamp(static_cast<int>(t * kWidth), 0, kWidth - 1);
  };
  std::string bar(kWidth, ' ');
  int a = pos(lo), b = pos(hi);
  for (int i = a; i <= b; ++i) bar[static_cast<size_t>(i)] = '-';
  bar[static_cast<size_t>(a)] = '[';
  bar[static_cast<size_t>(b)] = ']';
  return bar;
}

/// --serve mode: the engine behind an HTTP front end, blocking until
/// SIGINT/SIGTERM. Multiple curl clients POSTing /query concurrently get
/// independent converging answers while same-table queries share one scan.
int RunServer(gola::Engine& engine, int port) {
  using namespace gola;

  // Block the shutdown signals before any thread spawns, so they land in
  // the sigwait below instead of killing a worker mid-batch.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  obs::HttpServer http;
  server::QueryService service(&engine);
  service.AttachTo(&http);
  http.Route("/", [] {
    obs::HttpServer::Response r;
    r.body =
        "gola dashboard server\n"
        "  POST /query          SQL body -> SSE stream of converging answers\n"
        "                       ?batches= &replicates= &seed= &deadline_ms=\n"
        "                       &share=0|1 &stream=sse|none &label=\n"
        "  GET  /sessions       all sessions (JSON)\n"
        "  GET  /sessions/<id>  one session with its latest estimate\n"
        "  GET  /statusz        live introspection incl. sessions\n"
        "  GET  /metrics        Prometheus text incl. per-session families\n"
        "  GET  /timez          convergence time series (JSON; ?session=)\n"
        "  GET  /timez/stream   time-series samples as SSE\n";
    return r;
  });
  Status st = http.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot serve: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("SERVING http://127.0.0.1:%d (POST /query; Ctrl-C stops)\n",
              http.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("signal %d: draining\n", sig);
  http.Stop();                   // joins in-flight SSE streams
  engine.sessions().Shutdown();  // cancels + joins live sessions
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gola;

  bool serve = false;
  int port = 8080;
  long long rows = 200'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) serve = true;
    else if (std::strncmp(argv[i], "--port=", 7) == 0) port = std::atoi(argv[i] + 7);
    else if (std::strncmp(argv[i], "--rows=", 7) == 0) rows = std::atoll(argv[i] + 7);
  }

  Engine engine;
  ConvivaGenOptions gen;
  gen.num_rows = rows;
  gen.num_ads = 16;
  GOLA_CHECK_OK(engine.RegisterTable("conviva", GenerateConviva(gen)));

  if (serve) return RunServer(engine, port);

  struct Panel {
    std::string title;
    std::string sql;
  };
  std::vector<Panel> panels = {
      {"User retention: avg playback of slow-buffering sessions", SbiQuery()},
      {"Session quality: join-failure rate by geo (top 5)",
       "SELECT geo, AVG(join_failure_rate) AS jfr FROM conviva "
       "WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva) "
       "GROUP BY geo ORDER BY jfr DESC, geo LIMIT 5"},
      {"Ad health: abnormal sessions per ad (top 5)",
       "SELECT ad_id, COUNT(*) AS n FROM conviva s "
       "WHERE buffer_time > 1.5 * (SELECT AVG(buffer_time) FROM conviva t "
       "                           WHERE t.ad_id = s.ad_id) "
       "GROUP BY ad_id ORDER BY n DESC, ad_id LIMIT 5"},
  };

  for (const auto& panel : panels) {
    std::printf("==============================================================\n");
    std::printf("%s\n", panel.title.c_str());

    Stopwatch batch_timer;
    auto exact = engine.ExecuteBatch(panel.sql);
    GOLA_CHECK_OK(exact.status());
    double batch_s = batch_timer.ElapsedSeconds();

    GolaOptions opts;
    opts.num_batches = 25;
    opts.bootstrap_replicates = 80;
    auto online = engine.ExecuteOnline(panel.sql, opts);
    GOLA_CHECK_OK(online.status());

    // Show three refresh frames: early, mid, final.
    while (!(*online)->done()) {
      auto update = (*online)->Step();
      GOLA_CHECK_OK(update.status());
      int b = update->batch_index;
      if (b != 1 && b != 8 && b != update->total_batches) continue;

      std::printf("--- %3.0f%% of data, %.3fs (batch engine: %.3fs) ---\n",
                  100 * update->fraction_processed, update->elapsed_seconds, batch_s);
      const Table& r = update->result;
      const auto& schema = *r.schema();
      // Locate the first aggregate column and its lo/hi companions.
      int value_col = -1, lo_col = -1, hi_col = -1;
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        std::string name = schema.field(c).name;
        if (name.size() > 3 && name.substr(name.size() - 3) == "_lo") {
          lo_col = static_cast<int>(c);
          hi_col = lo_col + 1;
          value_col = *schema.FieldIndex(name.substr(0, name.size() - 3));
          break;
        }
      }
      if (value_col < 0) continue;
      // Shared scale for the frame's bars.
      double frame_lo = 1e300, frame_hi = -1e300;
      for (int64_t i = 0; i < r.num_rows(); ++i) {
        frame_lo = std::min(frame_lo, r.At(i, lo_col).ToDouble().ValueOr(0));
        frame_hi = std::max(frame_hi, r.At(i, hi_col).ToDouble().ValueOr(0));
      }
      for (int64_t i = 0; i < r.num_rows(); ++i) {
        std::string label = value_col > 0 ? r.At(i, 0).ToString() : "all";
        double v = r.At(i, value_col).ToDouble().ValueOr(0);
        double lo = r.At(i, lo_col).ToDouble().ValueOr(0);
        double hi = r.At(i, hi_col).ToDouble().ValueOr(0);
        std::printf("  %-6s %10.2f  %s\n", label.c_str(), v,
                    Bar(lo, hi, frame_lo, frame_hi).c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}

// Interactive SQL console over the online engine — the command-line
// equivalent of the paper's web-based query console (Figure 4): type any
// aggregate SQL query and watch it refine; press Enter to stop a running
// query early (the OLA control), exactly like the demo's stop button.
//
// Commands:
//   \tables                  list registered tables
//   \explain <sql>           show the lineage-block plan
//   \batch <sql>             run with the blocking engine instead
//   \save <table> <path>     persist a table in the golat binary format
//   \load <table> <path>     register a golat file as a table
//   \quit                    exit
#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "gola/gola.h"
#include "storage/serde.h"
#include "workload/conviva_gen.h"
#include "workload/tpch_gen.h"

int main() {
  using namespace gola;

  Engine engine;
  {
    ConvivaGenOptions conviva;
    conviva.num_rows = 300'000;
    GOLA_CHECK_OK(engine.RegisterTable("conviva", GenerateConviva(conviva)));
    TpchGenOptions tpch;
    tpch.num_rows = 300'000;
    GOLA_CHECK_OK(engine.RegisterTable("tpch", GenerateTpch(tpch)));
  }
  std::printf("FluoDB-style console. Tables: conviva, tpch. \\quit to exit.\n");
  std::printf("Try: SELECT AVG(play_time) FROM conviva WHERE buffer_time > "
              "(SELECT AVG(buffer_time) FROM conviva)\n\n");

  std::string line;
  for (;;) {
    std::printf("gola> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    if (trimmed == "\\tables") {
      for (const auto& name : engine.catalog().ListTables()) {
        auto table = engine.GetTable(name);
        std::printf("  %-10s %lld rows  (%s)\n", name.c_str(),
                    static_cast<long long>((*table)->num_rows()),
                    (*table)->schema()->ToString().c_str());
      }
      continue;
    }
    if (trimmed.rfind("\\explain ", 0) == 0) {
      auto plan = engine.Explain(trimmed.substr(9));
      std::printf("%s\n", plan.ok() ? plan->c_str() : plan.status().ToString().c_str());
      continue;
    }
    if (trimmed.rfind("\\save ", 0) == 0 || trimmed.rfind("\\load ", 0) == 0) {
      bool saving = trimmed[1] == 's';
      auto parts = Split(trimmed.substr(6), ' ');
      if (parts.size() != 2) {
        std::printf("usage: \\%s <table> <path>\n", saving ? "save" : "load");
        continue;
      }
      if (saving) {
        auto table = engine.GetTable(parts[0]);
        Status st = table.ok() ? WriteTableBinary(**table, parts[1]) : table.status();
        std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      } else {
        auto table = ReadTableBinary(parts[1]);
        Status st = table.ok() ? engine.RegisterTable(parts[0], std::move(*table))
                               : table.status();
        std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
      }
      continue;
    }
    if (trimmed.rfind("\\batch ", 0) == 0) {
      auto result = engine.ExecuteBatch(trimmed.substr(7));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        std::printf("%s\n", result->ToString(20).c_str());
      }
      continue;
    }

    GolaOptions options;
    options.num_batches = 20;
    options.bootstrap_replicates = 100;
    auto online = engine.ExecuteOnline(trimmed, options);
    if (!online.ok()) {
      std::printf("error: %s\n", online.status().ToString().c_str());
      continue;
    }
    while (!(*online)->done()) {
      auto update = (*online)->Step();
      if (!update.ok()) {
        std::printf("error: %s\n", update.status().ToString().c_str());
        break;
      }
      std::printf("-- batch %d/%d (%.0f%% of data, max rsd %.2f%%, |U|=%lld)\n",
                  update->batch_index, update->total_batches,
                  100 * update->fraction_processed, 100 * update->max_rsd,
                  static_cast<long long>(update->uncertain_tuples));
      std::printf("%s\n", update->result.ToString(10).c_str());
    }
  }
  return 0;
}
